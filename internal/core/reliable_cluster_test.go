package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/workload"
)

// buildRetryCluster is buildCluster with a lossy medium and the
// reliability layer switched on.
func buildRetryCluster(t *testing.T, n int, loss float64, retry proto.RetryConfig) *core.Cluster {
	t.Helper()
	cl := core.NewCluster(42, radio.Config{ProcDelay: 0.001, LossProb: loss}, core.DefaultProviderConfig)
	if retry.Enabled() {
		if err := cl.SetRetry(retry); err != nil {
			t.Fatalf("SetRetry: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		p := workload.Phone
		switch {
		case i == 0:
		case i%2 == 0:
			p = workload.Laptop
		default:
			p = workload.PDA
		}
		spec := workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, n, 10))
		if _, err := cl.AddNode(spec); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	return cl
}

// TestRetryFormsUnderLoss: with the reliability layer on, a formation
// over a 15%-lossy medium completes, retransmissions are issued, and
// the receiver dedup absorbs the double deliveries — providers end up
// with exactly the awarded reservations and a clean ledger after
// dissolve.
func TestRetryFormsUnderLoss(t *testing.T) {
	cl := buildRetryCluster(t, 6, 0.15, proto.DefaultRetryConfig)
	svc := workload.StreamService("stream", 3, 1.0)
	var res *core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cl.Run(10)
	if res == nil || !res.Complete() {
		t.Fatalf("formation failed under loss with retries: %+v", res)
	}
	var retx, dups uint64
	for _, id := range cl.Nodes() {
		n := cl.Node(id)
		retx += n.Retransmissions()
		dups += n.Duplicates()
	}
	if retx == 0 {
		t.Fatal("no retransmissions issued")
	}
	if dups == 0 {
		t.Fatal("no duplicates suppressed (double deliveries must occur at 15% loss)")
	}
	org.Dissolve("test done")
	cl.Run(20)
	for _, id := range cl.Nodes() {
		n := cl.Node(id)
		if n.Res.Available() != n.Res.Capacity() {
			t.Errorf("node %d leaked reservations: avail %v cap %v", id, n.Res.Available(), n.Res.Capacity())
		}
	}
}

// TestSetRetryAfterAddNodeRejected: the discipline must be uniform.
func TestSetRetryAfterAddNodeRejected(t *testing.T) {
	cl := buildCluster(t, 2)
	if err := cl.SetRetry(proto.DefaultRetryConfig); err == nil {
		t.Fatal("SetRetry accepted after AddNode")
	}
}

// TestStaleReleaseRefused: a TaskRelease stamped with a round older
// than the one that placed the current reservation must not free it —
// the replay-safety guard for unsequenced duplicates.
func TestStaleReleaseRefused(t *testing.T) {
	cl := buildCluster(t, 4)
	svc := workload.StreamService("s", 1, 1.0)
	var res *core.Result
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	cl.Run(5)
	if res == nil || !res.Complete() {
		t.Fatalf("formation failed: %+v", res)
	}
	a := res.Assigned["t0"]
	n := cl.Node(a.Node)
	before := n.Res.Available()

	// Replay a release from a round before the placement round (the
	// initial formation places at round >= 0, so -1 is always stale).
	n.Provider.OnMsg(0, &proto.TaskRelease{ServiceID: "s", TaskID: "t0", Round: -1, Reason: "stale replay"})
	if n.Res.Available() != before {
		t.Fatal("stale release freed the reservation")
	}
	if n.Provider.StaleReleases.Load() != 1 {
		t.Fatalf("StaleReleases = %d, want 1", n.Provider.StaleReleases.Load())
	}

	// A release at or after the placement round is honoured.
	n.Provider.OnMsg(0, &proto.TaskRelease{ServiceID: "s", TaskID: "t0", Round: 100, Reason: "current"})
	if n.Res.Available() == before {
		t.Fatal("current-round release refused")
	}
	// And a duplicate of it is a no-op (reservation already gone).
	after := n.Res.Available()
	n.Provider.OnMsg(0, &proto.TaskRelease{ServiceID: "s", TaskID: "t0", Round: 100, Reason: "dup"})
	if n.Res.Available() != after {
		t.Fatal("duplicate release changed the ledger")
	}
}
