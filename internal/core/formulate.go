// Package core implements the paper's primary contribution: dynamic
// QoS-aware coalition formation. It contains the local proposal
// formulation heuristic (Section 5), the multi-attribute proposal
// evaluation and winner selection with the paper's three criteria
// (Section 4.2/6), the Negotiation Organizer and QoS Provider state
// machines, and the coalition life cycle (formation, operation with
// failure-driven reconfiguration, dissolution).
package core

import (
	"errors"
	"fmt"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/task"
)

// ErrNoFeasibleLevel is returned when every degradation path is exhausted
// and no acceptable QoS level fits the node's available resources.
var ErrNoFeasibleLevel = errors.New("core: no acceptable QoS level is schedulable")

// Formulation is the outcome of the local QoS optimization heuristic: the
// least-degraded schedulable level, its reward (eq. 1), and the resource
// demand the level implies.
type Formulation struct {
	Level        qos.Level
	Assignment   qos.Assignment
	Ladder       *qos.Ladder
	Reward       float64
	Demand       resource.Vector
	Degradations int
}

// AvailFunc answers whether a demand vector is currently schedulable on
// the node; typically (*resource.Set).CanReserve.
type AvailFunc func(resource.Vector) bool

// Formulate runs the Section 5 heuristic, inspired by the local QoS
// optimization of Abdelzaher et al.:
//
//  1. start by selecting the user's preferred values for all QoS
//     dimensions;
//  2. while the resulting level is not schedulable, determine for each
//     degradable attribute the decrease in local reward of stepping it
//     one level down, and apply the degradation with minimal decrease;
//  3. stop when the level is schedulable (and dependency-consistent) or
//     no attribute can degrade further.
//
// gridSteps controls the discretization of continuous accepted spans
// (see qos.BuildLadder); penalty defaults to qos.DefaultPenalty.
func Formulate(spec *qos.Spec, req *qos.Request, dm task.DemandModel, avail AvailFunc, gridSteps int, penalty qos.PenaltyFunc) (*Formulation, error) {
	ladder, err := qos.BuildLadder(spec, req, gridSteps)
	if err != nil {
		return nil, err
	}
	if penalty == nil {
		penalty = qos.DefaultPenalty
	}
	a := ladder.NewAssignment()
	degradations := 0
	for {
		level := ladder.Level(a)
		demand, derr := dm.Demand(spec, level)
		if derr != nil {
			return nil, derr
		}
		depsOK, _ := spec.DepsSatisfied(level)
		if depsOK && avail(demand) {
			return &Formulation{
				Level:        level,
				Assignment:   a,
				Ladder:       ladder,
				Reward:       qos.Reward(ladder, a, penalty),
				Demand:       demand,
				Degradations: degradations,
			}, nil
		}
		i, ok := cheapestDegradation(ladder, a, penalty)
		if !ok {
			return nil, fmt.Errorf("%w (request %q after %d degradations)", ErrNoFeasibleLevel, req.Service, degradations)
		}
		a[i]++
		degradations++
	}
}

// cheapestDegradation finds the attribute whose next degradation step
// loses the least local reward (the paper's "find task Tm whose decrease
// is minimum", applied per attribute within one task's level). Ties break
// toward the least important attribute (highest ladder position), so that
// important dimensions keep their quality longest.
func cheapestDegradation(ld *qos.Ladder, a qos.Assignment, penalty qos.PenaltyFunc) (int, bool) {
	best := -1
	var bestCost float64
	for i := range ld.Attrs {
		if !ld.CanDegrade(a, i) {
			continue
		}
		la := &ld.Attrs[i]
		steps := len(la.Choices)
		w := la.Weight()
		cost := penalty(a[i]+1, steps, w) - penalty(a[i], steps, w)
		if best == -1 || cost < bestCost || (cost == bestCost && i > best) {
			best, bestCost = i, cost
		}
	}
	return best, best != -1
}

// FormulateResourceAware is an extension of the Section 5 heuristic that
// addresses its known myopia: the paper degrades whichever attribute
// loses the least reward, even when that degradation barely reduces
// resource demand (e.g. trimming audio bits while the CPU shortage comes
// from the frame rate). This variant scores each candidate degradation by
// reward-loss per unit of relieved bottleneck demand and applies the best
// ratio. It is not part of the paper; experiment E5 quantifies the gap it
// closes (see DESIGN.md "extensions").
func FormulateResourceAware(spec *qos.Spec, req *qos.Request, dm task.DemandModel, avail AvailFunc, gridSteps int, penalty qos.PenaltyFunc) (*Formulation, error) {
	ladder, err := qos.BuildLadder(spec, req, gridSteps)
	if err != nil {
		return nil, err
	}
	if penalty == nil {
		penalty = qos.DefaultPenalty
	}
	a := ladder.NewAssignment()
	degradations := 0
	for {
		level := ladder.Level(a)
		demand, derr := dm.Demand(spec, level)
		if derr != nil {
			return nil, derr
		}
		depsOK, _ := spec.DepsSatisfied(level)
		if depsOK && avail(demand) {
			return &Formulation{
				Level:        level,
				Assignment:   a,
				Ladder:       ladder,
				Reward:       qos.Reward(ladder, a, penalty),
				Demand:       demand,
				Degradations: degradations,
			}, nil
		}
		best := -1
		bestScore := 0.0
		for i := range ladder.Attrs {
			if !ladder.CanDegrade(a, i) {
				continue
			}
			la := &ladder.Attrs[i]
			steps := len(la.Choices)
			w := la.Weight()
			cost := penalty(a[i]+1, steps, w) - penalty(a[i], steps, w)
			trial := a.Clone()
			trial[i]++
			trialDemand, terr := dm.Demand(spec, ladder.Level(trial))
			if terr != nil {
				return nil, terr
			}
			relief := demandRelief(demand, trialDemand)
			// Score: relief per unit of reward lost; degradations that
			// relieve nothing rank last but stay eligible (cost-only).
			score := relief / (cost + 1e-9)
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("%w (request %q after %d degradations)", ErrNoFeasibleLevel, req.Service, degradations)
		}
		a[best]++
		degradations++
	}
}

// demandRelief measures how much a degradation reduces demand, summed
// over kinds and normalized by the current demand (so kinds with larger
// shortage weigh proportionally).
func demandRelief(cur, next resource.Vector) float64 {
	var relief float64
	for i := range cur {
		if cur[i] <= 0 {
			continue
		}
		d := (cur[i] - next[i]) / cur[i]
		if d > 0 {
			relief += d
		}
	}
	return relief
}

// FormulateExhaustive enumerates the full ladder cross-product and
// returns the schedulable level with maximal reward (ties: fewest
// degradations, then lexicographically smallest assignment). It is the
// optimal counterpart of Formulate used by experiment E5 to measure the
// heuristic's optimality gap; cost is exponential in attributes, so
// callers must bound the ladder (maxCombinations guards mistakes).
func FormulateExhaustive(spec *qos.Spec, req *qos.Request, dm task.DemandModel, avail AvailFunc, gridSteps int, penalty qos.PenaltyFunc, maxCombinations int64) (*Formulation, error) {
	ladder, err := qos.BuildLadder(spec, req, gridSteps)
	if err != nil {
		return nil, err
	}
	if penalty == nil {
		penalty = qos.DefaultPenalty
	}
	if c := ladder.Combinations(); c > maxCombinations {
		return nil, fmt.Errorf("core: exhaustive search over %d combinations exceeds bound %d", c, maxCombinations)
	}
	a := ladder.NewAssignment()
	var best *Formulation
	for {
		level := ladder.Level(a)
		if depsOK, _ := spec.DepsSatisfied(level); depsOK {
			demand, derr := dm.Demand(spec, level)
			if derr != nil {
				return nil, derr
			}
			if avail(demand) {
				r := qos.Reward(ladder, a, penalty)
				deg := 0
				for _, x := range a {
					deg += x
				}
				if best == nil || r > best.Reward || (r == best.Reward && deg < best.Degradations) {
					best = &Formulation{
						Level:        level,
						Assignment:   a.Clone(),
						Ladder:       ladder,
						Reward:       r,
						Demand:       demand,
						Degradations: deg,
					}
				}
			}
		}
		if !nextAssignment(ladder, a) {
			break
		}
	}
	if best == nil {
		return nil, ErrNoFeasibleLevel
	}
	return best, nil
}

// nextAssignment advances a through the cross-product in odometer order,
// returning false after the last combination.
func nextAssignment(ld *qos.Ladder, a qos.Assignment) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i]+1 < len(ld.Attrs[i].Choices) {
			a[i]++
			for j := i + 1; j < len(a); j++ {
				a[j] = 0
			}
			return true
		}
	}
	return false
}
