// Package core implements the paper's primary contribution: dynamic
// QoS-aware coalition formation. It contains the local proposal
// formulation heuristic (Section 5), the multi-attribute proposal
// evaluation and winner selection with the paper's three criteria
// (Section 4.2/6), the Negotiation Organizer and QoS Provider state
// machines, and the coalition life cycle (formation, operation with
// failure-driven reconfiguration, dissolution).
package core

import (
	"errors"
	"fmt"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/task"
)

// ErrNoFeasibleLevel is returned when every degradation path is exhausted
// and no acceptable QoS level fits the node's available resources.
var ErrNoFeasibleLevel = errors.New("core: no acceptable QoS level is schedulable")

// Formulation is the outcome of the local QoS optimization heuristic: the
// least-degraded schedulable level, its reward (eq. 1), and the resource
// demand the level implies.
type Formulation struct {
	Level        qos.Level
	Assignment   qos.Assignment
	Ladder       *qos.Ladder
	Reward       float64
	Demand       resource.Vector
	Degradations int
}

// AvailFunc answers whether a demand vector is currently schedulable on
// the node; typically (*resource.Set).CanReserve.
type AvailFunc func(resource.Vector) bool

// CompiledProblem is one (spec, request, demand model, gridSteps,
// penalty) formulation instance with every per-request invariant
// precomputed: the degradation ladder, the slot-indexed reward/distance
// and dependency tables (qos.Compiled), and — when the demand model
// supports the slot-delta fast path — the per-slot demand decomposition.
// Compile once, formulate many times: providers cache these per CFP
// demand reference, and the branch-and-bound baseline formulates the
// same task against many nodes without re-deriving anything.
type CompiledProblem struct {
	Spec   *qos.Spec
	Req    *qos.Request
	Ladder *qos.Ladder
	// C evaluates reward, distance and dependencies on assignments.
	C *qos.Compiled

	dm task.DemandModel
	// table is the slot-indexed demand decomposition, nil when dm does
	// not support (or declined) compilation; the fallback materializes a
	// Level per iteration exactly like the pre-compiled implementation.
	table *task.DemandTable
}

// CompileProblem builds the compiled formulation instance. gridSteps
// and penalty follow the Formulate conventions (<=0 and nil select the
// defaults).
func CompileProblem(spec *qos.Spec, req *qos.Request, dm task.DemandModel, gridSteps int, penalty qos.PenaltyFunc) (*CompiledProblem, error) {
	ladder, err := qos.BuildLadder(spec, req, gridSteps)
	if err != nil {
		return nil, err
	}
	ev := &qos.Evaluator{Spec: spec, Req: req}
	c, err := ev.Compile(ladder, penalty)
	if err != nil {
		return nil, err
	}
	cp := &CompiledProblem{Spec: spec, Req: req, Ladder: ladder, C: c, dm: dm}
	if sd, ok := dm.(task.SlotDemandModel); ok {
		if tbl, terr := sd.CompileDemand(spec, ladder); terr == nil {
			cp.table = tbl
		}
	}
	return cp, nil
}

// demand evaluates the current assignment's demand: slot-indexed when
// compiled, level-by-level otherwise.
func (cp *CompiledProblem) demand(a qos.Assignment) (resource.Vector, error) {
	if cp.table != nil {
		return cp.table.Demand(a), nil
	}
	return cp.dm.Demand(cp.Spec, cp.Ladder.Level(a))
}

// DemandAt evaluates the demand of an arbitrary assignment over the
// compiled problem: slot-indexed when the demand model compiled,
// level-by-level otherwise. The mid-session adaptation engine prices
// degrade and upgrade steps with it before touching any reservation.
func (cp *CompiledProblem) DemandAt(a qos.Assignment) (resource.Vector, error) {
	return cp.demand(a)
}

// NextDegradation exposes one step of the Section 5 walk: the attribute
// whose next degradation loses the least local reward from assignment a,
// or ok=false when the ladder is exhausted. Callers that apply the step
// (a[i]++) and iterate retrace exactly the degradation path Formulate
// walks, which is what lets the adaptation engine's in-place degradations
// share the path-derived distance ordering of the branch-and-bound
// bounds.
func (cp *CompiledProblem) NextDegradation(a qos.Assignment) (i int, ok bool) {
	return cp.cheapestDegradation(a)
}

// finish packages the accepted assignment as a Formulation, paying the
// single Level materialization of the whole formulate call.
func (cp *CompiledProblem) finish(a qos.Assignment, demand resource.Vector, degradations int) *Formulation {
	return &Formulation{
		Level:        cp.Ladder.Level(a),
		Assignment:   a,
		Ladder:       cp.Ladder,
		Reward:       cp.C.Reward(a),
		Demand:       demand,
		Degradations: degradations,
	}
}

// Formulate runs the Section 5 heuristic, inspired by the local QoS
// optimization of Abdelzaher et al.:
//
//  1. start by selecting the user's preferred values for all QoS
//     dimensions;
//  2. while the resulting level is not schedulable, determine for each
//     degradable attribute the decrease in local reward of stepping it
//     one level down, and apply the degradation with minimal decrease;
//  3. stop when the level is schedulable (and dependency-consistent) or
//     no attribute can degrade further.
//
// Each step re-evaluates demand on the compiled slot table (a few
// vector adds in canonical key order — bit-identical to the model's
// level-by-level answer, see task.DemandTable) and runs reward and
// dependency checks on the slot-indexed tables, so the loop performs
// no map operations and no allocations.
func (cp *CompiledProblem) Formulate(avail AvailFunc) (*Formulation, error) {
	a := cp.Ladder.NewAssignment()
	degradations := 0
	for {
		demand, derr := cp.demand(a)
		if derr != nil {
			return nil, derr
		}
		depsOK, _ := cp.C.DepsSatisfied(a)
		if depsOK && avail(demand) {
			return cp.finish(a, demand, degradations), nil
		}
		i, ok := cp.cheapestDegradation(a)
		if !ok {
			return nil, fmt.Errorf("%w (request %q after %d degradations)", ErrNoFeasibleLevel, cp.Req.Service, degradations)
		}
		a[i]++
		degradations++
	}
}

// cheapestDegradation finds the attribute whose next degradation step
// loses the least local reward (the paper's "find task Tm whose decrease
// is minimum", applied per attribute within one task's level). Ties break
// toward the least important attribute (highest ladder position), so that
// important dimensions keep their quality longest.
func (cp *CompiledProblem) cheapestDegradation(a qos.Assignment) (int, bool) {
	best := -1
	var bestCost float64
	for i := range cp.C.Slots {
		if !cp.Ladder.CanDegrade(a, i) {
			continue
		}
		cost := cp.C.DegradeCost(a, i)
		if best == -1 || cost < bestCost || (cost == bestCost && i > best) {
			best, bestCost = i, cost
		}
	}
	return best, best != -1
}

// WalkDegradationPath visits every assignment on the Section 5
// degradation path, from the all-preferred start to exhaustion. The
// path is availability-independent — which attribute degrades next
// depends only on the reward table — so resources merely pick the
// stopping point. Formulate always returns some stop of this path,
// which is what makes path-derived distance bounds admissible for the
// branch-and-bound baseline. The visited assignment is reused; treat it
// as read-only and do not retain it.
func (cp *CompiledProblem) WalkDegradationPath(visit func(a qos.Assignment)) {
	a := cp.Ladder.NewAssignment()
	for {
		visit(a)
		i, ok := cp.cheapestDegradation(a)
		if !ok {
			return
		}
		a[i]++
	}
}

// Formulate is the one-shot convenience wrapper: compile, then run the
// heuristic. Hot paths (providers answering CFPs, baselines probing
// many nodes) should CompileProblem once and reuse it.
//
// gridSteps controls the discretization of continuous accepted spans
// (see qos.BuildLadder); penalty defaults to qos.DefaultPenalty.
func Formulate(spec *qos.Spec, req *qos.Request, dm task.DemandModel, avail AvailFunc, gridSteps int, penalty qos.PenaltyFunc) (*Formulation, error) {
	cp, err := CompileProblem(spec, req, dm, gridSteps, penalty)
	if err != nil {
		return nil, err
	}
	return cp.Formulate(avail)
}

// FormulateResourceAware is an extension of the Section 5 heuristic that
// addresses its known myopia: the paper degrades whichever attribute
// loses the least reward, even when that degradation barely reduces
// resource demand (e.g. trimming audio bits while the CPU shortage comes
// from the frame rate). This variant scores each candidate degradation by
// reward-loss per unit of relieved bottleneck demand and applies the best
// ratio. It is not part of the paper; experiment E5 quantifies the gap it
// closes (see DESIGN.md "extensions").
func (cp *CompiledProblem) FormulateResourceAware(avail AvailFunc) (*Formulation, error) {
	a := cp.Ladder.NewAssignment()
	trial := cp.Ladder.NewAssignment()
	degradations := 0
	for {
		demand, derr := cp.demand(a)
		if derr != nil {
			return nil, derr
		}
		depsOK, _ := cp.C.DepsSatisfied(a)
		if depsOK && avail(demand) {
			return cp.finish(a, demand, degradations), nil
		}
		best := -1
		bestScore := 0.0
		for i := range cp.C.Slots {
			if !cp.Ladder.CanDegrade(a, i) {
				continue
			}
			cost := cp.C.DegradeCost(a, i)
			copy(trial, a)
			trial[i]++
			trialDemand, terr := cp.demand(trial)
			if terr != nil {
				return nil, terr
			}
			relief := demandRelief(demand, trialDemand)
			// Score: relief per unit of reward lost; degradations that
			// relieve nothing rank last but stay eligible (cost-only).
			score := relief / (cost + 1e-9)
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("%w (request %q after %d degradations)", ErrNoFeasibleLevel, cp.Req.Service, degradations)
		}
		a[best]++
		degradations++
	}
}

// FormulateResourceAware is the one-shot wrapper of the resource-aware
// variant.
func FormulateResourceAware(spec *qos.Spec, req *qos.Request, dm task.DemandModel, avail AvailFunc, gridSteps int, penalty qos.PenaltyFunc) (*Formulation, error) {
	cp, err := CompileProblem(spec, req, dm, gridSteps, penalty)
	if err != nil {
		return nil, err
	}
	return cp.FormulateResourceAware(avail)
}

// demandRelief measures how much a degradation reduces demand, summed
// over kinds and normalized by the current demand (so kinds with larger
// shortage weigh proportionally).
func demandRelief(cur, next resource.Vector) float64 {
	var relief float64
	for i := range cur {
		if cur[i] <= 0 {
			continue
		}
		d := (cur[i] - next[i]) / cur[i]
		if d > 0 {
			relief += d
		}
	}
	return relief
}

// FormulateExhaustive enumerates the full ladder cross-product and
// returns the schedulable level with maximal reward (ties: fewest
// degradations, then lexicographically smallest assignment). It is the
// optimal counterpart of Formulate used by experiment E5 to measure the
// heuristic's optimality gap; cost is exponential in attributes, so
// callers must bound the ladder (maxCombinations guards mistakes).
func (cp *CompiledProblem) FormulateExhaustive(avail AvailFunc, maxCombinations int64) (*Formulation, error) {
	if c := cp.Ladder.Combinations(); c > maxCombinations {
		return nil, fmt.Errorf("core: exhaustive search over %d combinations exceeds bound %d", c, maxCombinations)
	}
	a := cp.Ladder.NewAssignment()
	var bestA qos.Assignment
	var bestReward float64
	var bestDemand resource.Vector
	bestDeg := 0
	for {
		if depsOK, _ := cp.C.DepsSatisfied(a); depsOK {
			demand, derr := cp.demand(a)
			if derr != nil {
				return nil, derr
			}
			if avail(demand) {
				r := cp.C.Reward(a)
				deg := 0
				for _, x := range a {
					deg += x
				}
				if bestA == nil || r > bestReward || (r == bestReward && deg < bestDeg) {
					bestA = a.Clone()
					bestReward, bestDeg, bestDemand = r, deg, demand
				}
			}
		}
		if !nextAssignment(cp.Ladder, a) {
			break
		}
	}
	if bestA == nil {
		return nil, ErrNoFeasibleLevel
	}
	return cp.finish(bestA, bestDemand, bestDeg), nil
}

// FormulateExhaustive is the one-shot wrapper of the exhaustive search.
func FormulateExhaustive(spec *qos.Spec, req *qos.Request, dm task.DemandModel, avail AvailFunc, gridSteps int, penalty qos.PenaltyFunc, maxCombinations int64) (*Formulation, error) {
	cp, err := CompileProblem(spec, req, dm, gridSteps, penalty)
	if err != nil {
		return nil, err
	}
	return cp.FormulateExhaustive(avail, maxCombinations)
}

// nextAssignment advances a through the cross-product in odometer order,
// returning false after the last combination.
func nextAssignment(ld *qos.Ladder, a qos.Assignment) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i]+1 < len(ld.Attrs[i].Choices) {
			a[i]++
			for j := i + 1; j < len(a); j++ {
				a[j] = 0
			}
			return true
		}
	}
	return false
}
