package core_test

import (
	"errors"
	"testing"

	. "repro/internal/core"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/workload"
)

// availCap returns an AvailFunc over a fixed capacity vector.
func availCap(capacity resource.Vector) AvailFunc {
	return func(d resource.Vector) bool { return d.Fits(capacity) }
}

func streamingInputs() (*qos.Spec, qos.Request, task.DemandModel) {
	return workload.VideoSpec(), workload.StreamingRequest("t"), workload.VideoDemand(1)
}

func TestFormulateServesPreferredWhenAbundant(t *testing.T) {
	spec, req, dm := streamingInputs()
	f, err := Formulate(spec, &req, dm, availCap(resource.V(
		resource.KV{K: resource.CPU, A: 1e9},
		resource.KV{K: resource.Memory, A: 1e9},
		resource.KV{K: resource.NetBW, A: 1e9},
		resource.KV{K: resource.Energy, A: 1e9},
	)), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Degradations != 0 {
		t.Errorf("degradations = %d, want 0", f.Degradations)
	}
	if !f.Level.Equal(req.Preferred()) {
		// Preferred() returns Float for spans; the ladder materializes
		// ints for int domains, so compare per attribute numerically.
		for k, v := range req.Preferred() {
			got := f.Level[k]
			if got.Num() != v.Num() {
				t.Errorf("attr %v = %v, want %v", k, got, v)
			}
		}
	}
	// Reward at preferred level is n (= 2 dimensions).
	if f.Reward != 2 {
		t.Errorf("reward = %v, want 2", f.Reward)
	}
}

func TestFormulateDegradesUntilSchedulable(t *testing.T) {
	spec, req, dm := streamingInputs()
	// Preferred demand is ~370 CPU; allow only 200.
	capacity := resource.V(
		resource.KV{K: resource.CPU, A: 200},
		resource.KV{K: resource.Memory, A: 1e9},
		resource.KV{K: resource.NetBW, A: 1e9},
		resource.KV{K: resource.Energy, A: 1e9},
	)
	f, err := Formulate(spec, &req, dm, availCap(capacity), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Degradations == 0 {
		t.Error("expected degradations under scarcity")
	}
	if !f.Demand.Fits(capacity) {
		t.Errorf("formulated demand %v does not fit capacity", f.Demand)
	}
	if !req.Admits(f.Level) {
		t.Errorf("formulated level %v not admissible", f.Level)
	}
	if f.Reward >= 2 {
		t.Errorf("reward = %v, must be below n after degradation", f.Reward)
	}
}

func TestFormulateFailsWhenImpossible(t *testing.T) {
	spec, req, dm := streamingInputs()
	_, err := Formulate(spec, &req, dm, availCap(resource.V(resource.KV{K: resource.CPU, A: 1})), 4, nil)
	if !errors.Is(err, ErrNoFeasibleLevel) {
		t.Fatalf("err = %v, want ErrNoFeasibleLevel", err)
	}
}

func TestFormulateRespectsDependencies(t *testing.T) {
	spec, req, dm := streamingInputs()
	// Bound frame_rate x color_depth: the preferred 30x24=720 violates;
	// the heuristic must degrade until the dependency holds.
	spec.Deps = []qos.Dependency{{
		Kind:  qos.DepMaxProduct,
		A:     qos.AttrKey{Dim: "video", Attr: "frame_rate"},
		B:     qos.AttrKey{Dim: "video", Attr: "color_depth"},
		Bound: 500,
	}}
	f, err := Formulate(spec, &req, dm, availCap(resource.V(
		resource.KV{K: resource.CPU, A: 1e9},
		resource.KV{K: resource.Memory, A: 1e9},
		resource.KV{K: resource.NetBW, A: 1e9},
		resource.KV{K: resource.Energy, A: 1e9},
	)), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr := f.Level[qos.AttrKey{Dim: "video", Attr: "frame_rate"}].Num()
	cd := f.Level[qos.AttrKey{Dim: "video", Attr: "color_depth"}].Num()
	if fr*cd > 500 {
		t.Errorf("dependency violated: %v * %v > 500", fr, cd)
	}
}

func TestFormulateMatchesPaperGreedyOrder(t *testing.T) {
	// The heuristic's first degradation must be the one with the
	// minimal reward decrease. For the streaming request at grid 4 the
	// frame-rate ladder has ~10 steps at weight 1.0 (delta ~0.11 per
	// step) while every other attribute costs >= 0.25 per step, so a
	// single-step shortage must be absorbed by frame rate alone, with
	// all other attributes untouched.
	spec, req, dm := streamingInputs()
	capacity := resource.V(
		resource.KV{K: resource.CPU, A: 360}, // just below preferred (~370)
		resource.KV{K: resource.Memory, A: 1e9},
		resource.KV{K: resource.NetBW, A: 1e9},
		resource.KV{K: resource.Energy, A: 1e9},
	)
	f, err := Formulate(spec, &req, dm, availCap(capacity), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Degradations != 1 {
		t.Fatalf("degradations = %d, want exactly 1", f.Degradations)
	}
	cd := f.Level[qos.AttrKey{Dim: "video", Attr: "color_depth"}]
	sr := f.Level[qos.AttrKey{Dim: "audio", Attr: "sampling_rate"}]
	sb := f.Level[qos.AttrKey{Dim: "audio", Attr: "sample_bits"}]
	if cd.Num() != 24 || sr.Num() != 44 || sb.Num() != 16 {
		t.Errorf("expensive attributes degraded first: cd=%v sr=%v sb=%v", cd, sr, sb)
	}
	fr := f.Level[qos.AttrKey{Dim: "video", Attr: "frame_rate"}]
	if fr.Num() >= 30 {
		t.Errorf("frame rate = %v, want one step below 30 (cheapest degradation)", fr)
	}
}

func TestFormulateExhaustiveAtLeastHeuristic(t *testing.T) {
	spec, req, dm := streamingInputs()
	for _, cpu := range []float64{1e9, 500, 380, 300, 250, 220} {
		capacity := resource.V(
			resource.KV{K: resource.CPU, A: cpu},
			resource.KV{K: resource.Memory, A: 1e9},
			resource.KV{K: resource.NetBW, A: 1e9},
			resource.KV{K: resource.Energy, A: 1e9},
		)
		h, herr := Formulate(spec, &req, dm, availCap(capacity), 3, nil)
		o, oerr := FormulateExhaustive(spec, &req, dm, availCap(capacity), 3, nil, 1<<21)
		if (herr == nil) != (oerr == nil) {
			t.Fatalf("cpu=%v: feasibility disagreement (%v vs %v)", cpu, herr, oerr)
		}
		if herr != nil {
			continue
		}
		if o.Reward < h.Reward-1e-12 {
			t.Errorf("cpu=%v: exhaustive reward %v below heuristic %v", cpu, o.Reward, h.Reward)
		}
		if !o.Demand.Fits(capacity) {
			t.Errorf("cpu=%v: exhaustive demand does not fit", cpu)
		}
	}
}

func TestFormulateResourceAwareDominatesPaperHeuristic(t *testing.T) {
	spec, req, dm := streamingInputs()
	for _, frac := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5} {
		ladder, err := qos.BuildLadder(spec, &req, 3)
		if err != nil {
			t.Fatal(err)
		}
		pref, err := dm.Demand(spec, ladder.Level(ladder.NewAssignment()))
		if err != nil {
			t.Fatal(err)
		}
		capacity := pref.Scale(frac)
		h, herr := Formulate(spec, &req, dm, availCap(capacity), 3, nil)
		ra, raerr := FormulateResourceAware(spec, &req, dm, availCap(capacity), 3, nil)
		if (herr == nil) != (raerr == nil) {
			t.Fatalf("frac=%v: feasibility disagreement", frac)
		}
		if herr != nil {
			continue
		}
		if ra.Reward < h.Reward-1e-12 {
			t.Errorf("frac=%v: resource-aware reward %v below paper heuristic %v", frac, ra.Reward, h.Reward)
		}
	}
}

func TestFormulateExhaustiveBoundsSearch(t *testing.T) {
	spec, req, dm := streamingInputs()
	if _, err := FormulateExhaustive(spec, &req, dm, availCap(resource.Vector{}), 10, nil, 4); err == nil {
		t.Error("combination bound not enforced")
	}
}

func TestFormulateInvalidRequest(t *testing.T) {
	spec, req, dm := streamingInputs()
	req.Dims[0].Dim = "nope"
	if _, err := Formulate(spec, &req, dm, availCap(resource.Vector{}), 4, nil); err == nil {
		t.Error("invalid request accepted")
	}
}
