package core

import (
	"math"
	"sort"

	"repro/internal/qos"
	"repro/internal/radio"
)

// Candidate is one node's offer for one task, annotated by the organizer
// with its evaluation (Section 6 distance) and communication cost.
type Candidate struct {
	Node     radio.NodeID
	TaskID   string
	Level    qos.Level
	Reward   float64
	Distance float64
	CommCost float64
	// Copies is the provider's capacity hint: how many tasks of this
	// demand it could hold concurrently at proposal time (>= 1). The
	// organizer never stacks more than the hinted capacity onto a node,
	// which keeps award declines (and renegotiation rounds) rare. This
	// is a protocol refinement over the paper, which leaves the
	// organizer blind to provider capacity (see DESIGN.md).
	Copies int
}

// budgetCost is the budget fraction one selected task consumes on its
// node: 1/Copies of the node's (task-shaped) capacity.
func (c Candidate) budgetCost() float64 {
	if c.Copies <= 1 {
		return 1
	}
	return 1 / float64(c.Copies)
}

// SelectionPolicy configures winner selection. The paper forms the
// coalition from the proposal set with (a) lowest evaluation value,
// (b) lowest communication cost, and (c) lowest number of distinct nodes.
// (a) always applies; (b) orders candidates within DistanceEps of each
// other; (c) is a greedy consolidation pass that packs tasks onto as few
// members as capacity hints allow, among candidates within DistanceEps of
// each task's best.
type SelectionPolicy struct {
	// DistanceEps is the evaluation-value tolerance within which two
	// proposals are considered equally good, enabling the secondary
	// criteria. Zero means strict lexicographic comparison.
	DistanceEps float64
	// UseCommCost enables criterion (b).
	UseCommCost bool
	// Consolidate enables criterion (c).
	Consolidate bool
	// Spread inverts criterion (c): among candidates within DistanceEps
	// of a task's best, prefer the node with the most remaining
	// capacity budget (classic load balancing). Mutually exclusive with
	// Consolidate; used by the E4 ablation to quantify what criterion
	// (c) buys.
	Spread bool
}

// DefaultPolicy applies all three of the paper's criteria with a small
// distance tolerance.
var DefaultPolicy = SelectionPolicy{DistanceEps: 0.05, UseCommCost: true, Consolidate: true}

// DistanceOnlyPolicy applies only criterion (a); used by the ablation
// experiment E6.
var DistanceOnlyPolicy = SelectionPolicy{}

// Assignment3 is the selected allocation for one task.
type Assignment3 struct {
	TaskID   string
	Node     radio.NodeID
	Level    qos.Level
	Distance float64
	CommCost float64
}

// Selection is the outcome of winner selection across a service's tasks.
type Selection struct {
	Assigned []Assignment3
	// Unserved lists tasks with no admissible proposal (or whose
	// proposers ran out of hinted capacity this round; they renegotiate).
	Unserved []string
}

// Members returns the distinct winning nodes, ascending.
func (s *Selection) Members() []radio.NodeID {
	seen := make(map[radio.NodeID]bool)
	var out []radio.NodeID
	for _, a := range s.Assigned {
		if !seen[a.Node] {
			seen[a.Node] = true
			out = append(out, a.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalDistance sums the assigned evaluation values.
func (s *Selection) TotalDistance() float64 {
	var t float64
	for _, a := range s.Assigned {
		t += a.Distance
	}
	return t
}

// TotalCommCost sums the assigned communication costs.
func (s *Selection) TotalCommCost() float64 {
	var t float64
	for _, a := range s.Assigned {
		t += a.CommCost
	}
	return t
}

// budget tracks per-node packed capacity during selection.
type budget map[radio.NodeID]float64

const budgetSlack = 1e-9

func (b budget) fits(c Candidate) bool {
	return b[c.Node]+c.budgetCost() <= 1+budgetSlack
}

func (b budget) take(c Candidate) { b[c.Node] += c.budgetCost() }

// SelectWinners picks, for every task with at least one candidate, the
// winning proposal under the policy. Candidates must already be
// admissible and annotated with Distance, CommCost and Copies; taskOrder
// fixes the deterministic processing order.
func SelectWinners(taskOrder []string, candidates map[string][]Candidate, policy SelectionPolicy) *Selection {
	sel := &Selection{}
	used := make(budget)
	chosen := make(map[string]Candidate, len(taskOrder))

	// bestDist per task sets the eligibility band for the secondary
	// criteria.
	bestDist := make(map[string]float64, len(taskOrder))
	for _, tid := range taskOrder {
		cands := candidates[tid]
		if len(cands) == 0 {
			continue
		}
		best := math.Inf(1)
		for _, c := range cands {
			if c.Distance < best {
				best = c.Distance
			}
		}
		bestDist[tid] = best
	}

	var open []string // tasks not yet assigned
	for _, tid := range taskOrder {
		if _, ok := bestDist[tid]; ok {
			open = append(open, tid)
		} else {
			sel.Unserved = append(sel.Unserved, tid)
		}
	}

	if policy.Consolidate {
		open = consolidate(open, candidates, bestDist, policy, used, chosen)
	}

	// Per-task assignment for whatever consolidation left open (or all
	// tasks when consolidation is off): best candidate with available
	// budget, ordered by the paper's criteria (or by remaining budget
	// when spreading).
	for _, tid := range open {
		ordered := append([]Candidate(nil), candidates[tid]...)
		sort.Slice(ordered, func(i, j int) bool {
			return candidateLess(ordered[i], ordered[j], policy)
		})
		if policy.Spread && len(ordered) > 0 {
			band := bestDist[tid] + policy.DistanceEps
			sort.SliceStable(ordered, func(i, j int) bool {
				ini, inj := ordered[i].Distance <= band, ordered[j].Distance <= band
				if ini != inj {
					return ini
				}
				if !ini {
					return false
				}
				return used[ordered[i].Node] < used[ordered[j].Node]
			})
		}
		assigned := false
		for _, c := range ordered {
			if !used.fits(c) {
				continue
			}
			used.take(c)
			chosen[tid] = c
			assigned = true
			break
		}
		if !assigned {
			sel.Unserved = append(sel.Unserved, tid)
		}
	}

	for _, tid := range taskOrder {
		c, ok := chosen[tid]
		if !ok {
			continue
		}
		sel.Assigned = append(sel.Assigned, Assignment3{
			TaskID: tid, Node: c.Node, Level: c.Level,
			Distance: c.Distance, CommCost: c.CommCost,
		})
	}
	return sel
}

// candidateLess orders candidates by the paper's criteria: evaluation
// value first; within DistanceEps, communication cost (when enabled);
// then node ID for determinism.
func candidateLess(a, b Candidate, p SelectionPolicy) bool {
	if math.Abs(a.Distance-b.Distance) > p.DistanceEps {
		return a.Distance < b.Distance
	}
	if p.UseCommCost && a.CommCost != b.CommCost {
		return a.CommCost < b.CommCost
	}
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Node < b.Node
}

// consolidate implements criterion (c) — "lowest number of distinct nodes
// in coalition; coalition operation's complexity increases with the
// number of distinct members" — as a greedy set-cover: repeatedly pick
// the node that can absorb the most still-open tasks (only candidates
// within DistanceEps of each task's best are eligible, so criterion (a)
// keeps priority), assign them, and continue until no node can absorb
// two or more tasks. Remaining tasks fall through to per-task selection.
// Returns the tasks still open.
func consolidate(open []string, candidates map[string][]Candidate, bestDist map[string]float64, p SelectionPolicy, used budget, chosen map[string]Candidate) []string {
	remaining := append([]string(nil), open...)
	for {
		// For every node, collect the eligible candidate per open task.
		byNode := make(map[radio.NodeID]*pack)
		for _, tid := range remaining {
			for _, c := range candidates[tid] {
				if c.Distance > bestDist[tid]+p.DistanceEps {
					continue
				}
				pk := byNode[c.Node]
				if pk == nil {
					pk = &pack{node: c.Node, cands: make(map[string]Candidate)}
					byNode[c.Node] = pk
				}
				// Keep the best-evaluating offer per (node, task).
				if old, ok := pk.cands[tid]; !ok || candidateLess(c, old, p) {
					pk.cands[tid] = c
				}
			}
		}
		// Fill each node greedily within its remaining budget, tasks in
		// declaration order for determinism.
		var best *pack
		for _, pk := range byNode {
			b := used[pk.node]
			for _, tid := range remaining {
				c, ok := pk.cands[tid]
				if !ok {
					continue
				}
				if b+c.budgetCost() > 1+budgetSlack {
					continue
				}
				b += c.budgetCost()
				pk.tasks = append(pk.tasks, tid)
				pk.dist += c.Distance
				pk.comm += c.CommCost
			}
			if len(pk.tasks) == 0 {
				continue
			}
			if best == nil || packLess(pk, best, p) {
				best = pk
			}
		}
		// Stop when no node absorbs more than one task: per-task
		// selection handles the rest at least as well.
		if best == nil || len(best.tasks) < 2 {
			return remaining
		}
		for _, tid := range best.tasks {
			c := best.cands[tid]
			used.take(c)
			chosen[tid] = c
		}
		var left []string
		for _, tid := range remaining {
			if _, ok := chosen[tid]; !ok {
				left = append(left, tid)
			}
		}
		remaining = left
		if len(remaining) == 0 {
			return nil
		}
	}
}

// pack is one node's potential absorption of open tasks during the
// consolidation pass.
type pack struct {
	node  radio.NodeID
	tasks []string
	cands map[string]Candidate
	dist  float64
	comm  float64
}

// packLess ranks consolidation packs: absorb more tasks; then lower total
// distance; then lower communication cost (when enabled); then node ID.
func packLess(a, b *pack, p SelectionPolicy) bool {
	if len(a.tasks) != len(b.tasks) {
		return len(a.tasks) > len(b.tasks)
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if p.UseCommCost && a.comm != b.comm {
		return a.comm < b.comm
	}
	return a.node < b.node
}
