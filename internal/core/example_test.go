package core_test

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/workload"
)

// ExampleCompiledProblem shows the headline formulation API: compile a
// (spec, request, demand model) triple once, then run the Section 5
// degradation heuristic against different nodes' availability on the
// slot-indexed fast path. A rich node serves the user's preferred
// levels outright; a starved node forces degradations, and the
// resource-aware variant picks the ones that actually relieve the
// bottleneck (DESIGN.md §7).
func ExampleCompiledProblem() {
	spec := workload.VideoSpec()
	req := workload.StreamingRequest("demo")
	dm := workload.VideoDemand(1.0)

	cp, err := core.CompileProblem(spec, &req, dm, 0, nil)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}

	rich := resource.NewSet(resource.V(
		resource.KV{K: resource.CPU, A: 4000}, resource.KV{K: resource.Memory, A: 2048},
		resource.KV{K: resource.NetBW, A: 20000}, resource.KV{K: resource.Energy, A: 8192},
		resource.KV{K: resource.Storage, A: 8192}))
	f, err := cp.Formulate(rich.CanReserve)
	if err != nil {
		fmt.Println("rich:", err)
		return
	}
	fmt.Printf("rich node:    %d degradations, distance %.3f\n", f.Degradations, cp.C.Distance(f.Assignment))

	poor := resource.NewSet(resource.V(
		resource.KV{K: resource.CPU, A: 260}, resource.KV{K: resource.Memory, A: 64},
		resource.KV{K: resource.NetBW, A: 700}, resource.KV{K: resource.Energy, A: 256},
		resource.KV{K: resource.Storage, A: 512}))
	f, err = cp.FormulateResourceAware(poor.CanReserve)
	if err != nil {
		fmt.Println("poor:", err)
		return
	}
	fmt.Printf("starved node: %d degradations, distance %.3f\n", f.Degradations, cp.C.Distance(f.Assignment))

	empty := resource.NewSet(resource.Vector{})
	_, err = cp.Formulate(empty.CanReserve)
	fmt.Println("empty node exhausts the ladder:", errors.Is(err, core.ErrNoFeasibleLevel))

	// Output:
	// rich node:    0 degradations, distance 0.000
	// starved node: 9 degradations, distance 0.940
	// empty node exhausts the ladder: true
}
