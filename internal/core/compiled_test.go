package core

import (
	"math/rand"
	"testing"

	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/task"
)

// hideSlots wraps a demand model so it no longer advertises the
// SlotDemandModel fast path, forcing the level-by-level fallback.
type hideSlots struct{ dm task.DemandModel }

func (h hideSlots) Demand(spec *qos.Spec, level qos.Level) (resource.Vector, error) {
	return h.dm.Demand(spec, level)
}

// propDemand is a LinearDemand over the determinism fixtures. The
// coefficients are deliberately NOT exactly representable in binary
// (multiples of 0.3 and 1.1): bit-parity between the slot table and the
// level-by-level path must hold by construction (shared canonical
// summation order), not by luck with float-exact sums.
func propDemand(rng *rand.Rand) *task.LinearDemand {
	return &task.LinearDemand{
		Base: resource.V(resource.KV{K: resource.CPU, A: 0.3 * float64(15+rng.Intn(60))}),
		Coef: map[qos.AttrKey]resource.Vector{
			{Dim: "q", Attr: "rate"}: resource.V(
				resource.KV{K: resource.CPU, A: 1.1 * float64(1+rng.Intn(6))},
				resource.KV{K: resource.NetBW, A: 0.3 * float64(rng.Intn(24))},
			),
			{Dim: "q", Attr: "depth"}: resource.V(
				resource.KV{K: resource.Memory, A: 0.7 * float64(1+rng.Intn(6))},
				resource.KV{K: resource.CPU, A: 0.3 * float64(rng.Intn(5))},
			),
		},
	}
}

func sameFormulation(t *testing.T, label string, a, b *Formulation, aerr, berr error) {
	t.Helper()
	if (aerr != nil) != (berr != nil) {
		t.Fatalf("%s: feasibility disagrees: %v vs %v", label, aerr, berr)
	}
	if aerr != nil {
		return
	}
	if !a.Level.Equal(b.Level) {
		t.Fatalf("%s: levels differ: %v vs %v", label, a.Level, b.Level)
	}
	if a.Reward != b.Reward {
		t.Fatalf("%s: rewards differ bitwise: %v vs %v", label, a.Reward, b.Reward)
	}
	if a.Demand != b.Demand {
		t.Fatalf("%s: demands differ bitwise: %v vs %v", label, a.Demand, b.Demand)
	}
	if a.Degradations != b.Degradations {
		t.Fatalf("%s: degradations differ: %d vs %d", label, a.Degradations, b.Degradations)
	}
}

// TestCompiledFormulateMatchesFallback pins the incremental slot-delta
// demand path against the level-by-level fallback, bitwise, across
// random demand models and capacities, for all three formulators.
func TestCompiledFormulateMatchesFallback(t *testing.T) {
	spec := detSpec()
	req := detRequest()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dm := propDemand(rng)
		capacity := resource.V(
			resource.KV{K: resource.CPU, A: float64(rng.Intn(200))},
			resource.KV{K: resource.Memory, A: float64(rng.Intn(64))},
			resource.KV{K: resource.NetBW, A: float64(50 + rng.Intn(300))},
		)
		avail := func(d resource.Vector) bool { return d.Fits(capacity) }
		grid := 1 + rng.Intn(5)

		fast, err := CompileProblem(spec, &req, dm, grid, nil)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := CompileProblem(spec, &req, hideSlots{dm}, grid, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fast.table == nil {
			t.Fatal("LinearDemand must compile to a demand table")
		}
		if slow.table != nil {
			t.Fatal("hidden model must not compile")
		}

		f1, e1 := fast.Formulate(avail)
		f2, e2 := slow.Formulate(avail)
		sameFormulation(t, "formulate", f1, f2, e1, e2)

		r1, e1 := fast.FormulateResourceAware(avail)
		r2, e2 := slow.FormulateResourceAware(avail)
		sameFormulation(t, "resource-aware", r1, r2, e1, e2)

		x1, e1 := fast.FormulateExhaustive(avail, 1<<20)
		x2, e2 := slow.FormulateExhaustive(avail, 1<<20)
		sameFormulation(t, "exhaustive", x1, x2, e1, e2)
	}
}

// TestCompiledProblemReuse: one compiled problem formulated against
// shrinking availability must behave exactly like fresh one-shot calls
// (providers cache compiled problems across CFP rounds).
func TestCompiledProblemReuse(t *testing.T) {
	spec := detSpec()
	req := detRequest()
	dm := propDemand(rand.New(rand.NewSource(42)))
	cp, err := CompileProblem(spec, &req, dm, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cpu := range []float64{300, 120, 70, 40, 25, 10} {
		capacity := resource.V(
			resource.KV{K: resource.CPU, A: cpu},
			resource.KV{K: resource.Memory, A: 64},
			resource.KV{K: resource.NetBW, A: 500},
		)
		avail := func(d resource.Vector) bool { return d.Fits(capacity) }
		got, gerr := cp.Formulate(avail)
		want, werr := Formulate(spec, &req, dm, avail, 4, nil)
		sameFormulation(t, "reuse", got, want, gerr, werr)
	}
}
