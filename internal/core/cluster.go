package core

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// NodeSpec describes one node to add to a Cluster.
type NodeSpec struct {
	ID       radio.NodeID
	Mobility radio.Mobility
	// RangeM is radio range in meters; Bitrate the link speed in bits/s.
	RangeM, Bitrate float64
	// Capacity sizes the node's Resource Managers.
	Capacity resource.Vector
	// Profile is a display name ("phone", "laptop", ...).
	Profile string
	// BatteryDrain, when positive, replaces the Energy bucket with a
	// draining battery (capacity units per simulated second). A node
	// whose battery empties goes down (radio off, provider silent) and
	// the operation-phase monitor treats it as failed.
	BatteryDrain float64
}

// Node is one simulated device: its resources, its QoS Provider, and any
// organizers it runs for locally requested services.
type Node struct {
	ID       radio.NodeID
	Profile  string
	Res      *resource.Set
	Provider *Provider

	tr         proto.Transport
	organizers map[string]*Organizer
	orgSink    func(svc string) proto.Sink // persistent lookup for proto.Dispatch
	reliable   *proto.Reliable             // non-nil when the cluster retries
	dedup      proto.Dedup                 // receiver-side duplicate filter
}

// Retransmissions reports the retry sends this node's reliability layer
// issued (0 when retries are disabled).
func (n *Node) Retransmissions() uint64 {
	if n.reliable == nil {
		return 0
	}
	return n.reliable.Retransmissions()
}

// Duplicates reports the sequenced deliveries this node suppressed.
func (n *Node) Duplicates() uint64 { return n.dedup.Duplicates.Load() }

// Cluster assembles the full simulated system on a discrete-event engine:
// the radio medium, the node population, the shared application catalog,
// and service submission.
type Cluster struct {
	Eng     *sim.Engine
	Medium  *radio.Medium
	Catalog *Catalog
	// Obs aggregates every hardening counter in the cluster: AddNode
	// registers each node's retransmission, dedup and stale-release
	// counters, and anything driving the cluster (the session engine)
	// registers its own. One Snapshot covers them all, so no report has
	// to loop over nodes summing fields by hand.
	Obs *obs.Registry

	providerCfg ProviderConfig
	retry       proto.RetryConfig
	nodes       map[radio.NodeID]*Node

	// selfSends is a free-list of pooled local-dispatch records: sends to
	// the local node bypass the radio but still cross the event loop, and
	// pooling the record avoids one closure allocation per intra-node call.
	selfSends []*selfSend
}

// NewCluster builds an empty cluster on a fresh engine.
func NewCluster(seed int64, radioCfg radio.Config, providerCfg ProviderConfig) *Cluster {
	eng := sim.New(seed)
	reg := obs.NewRegistry()
	// Pre-seed the canonical names so a snapshot's key set does not
	// depend on which features a run enabled (retry off still reports
	// proto.retransmissions = 0, keeping snapshots comparable).
	reg.Counter(obs.Retransmissions)
	reg.Counter(obs.Duplicates)
	reg.Counter(obs.StaleReleases)
	return &Cluster{
		Eng:         eng,
		Medium:      radio.NewMedium(eng, radioCfg),
		Catalog:     NewCatalog(),
		Obs:         reg,
		providerCfg: providerCfg,
		nodes:       make(map[radio.NodeID]*Node),
	}
}

// SetRetry enables the at-least-once reliability layer for every node
// added afterwards: protocol sends are wrapped in sequence-numbered
// envelopes and blindly retransmitted per cfg, with receiver-side
// deduplication in dispatch. It must be called before the first AddNode
// so all nodes speak the same discipline.
func (c *Cluster) SetRetry(cfg proto.RetryConfig) error {
	if len(c.nodes) > 0 {
		return fmt.Errorf("core: SetRetry must precede AddNode (%d nodes exist)", len(c.nodes))
	}
	c.retry = cfg
	return nil
}

// simTimers adapts the engine to proto.Timers.
type simTimers struct{ eng *sim.Engine }

func (t simTimers) Now() float64               { return t.eng.Now() }
func (t simTimers) After(d float64, fn func()) { t.eng.After(d, fn) }

// simTransport adapts the radio medium to proto.Transport. Sends to the
// local node bypass the radio (they model intra-node calls) and are
// delivered on the next event-loop tick.
type simTransport struct {
	c  *Cluster
	id radio.NodeID
}

func (t simTransport) Self() radio.NodeID { return t.id }

// selfSend is one pending intra-node dispatch, pooled on the cluster.
type selfSend struct {
	c  *Cluster
	at radio.NodeID
	m  proto.Msg
}

// runSelfSend is the shared event handler for every selfSend record.
func runSelfSend(x any) {
	s := x.(*selfSend)
	c, at, m := s.c, s.at, s.m
	s.m = nil
	c.selfSends = append(c.selfSends, s)
	c.dispatch(at, at, m)
}

// Send implements proto.Transport. Modeled radio loss is not a send
// error (see the Transport contract), so the sim transport always
// returns nil.
func (t simTransport) Send(to radio.NodeID, m proto.Msg) error {
	if to == t.id {
		c := t.c
		var s *selfSend
		if n := len(c.selfSends); n > 0 {
			s = c.selfSends[n-1]
			c.selfSends = c.selfSends[:n-1]
		} else {
			s = &selfSend{c: c}
		}
		s.at, s.m = to, m
		c.Eng.AfterArg(0, runSelfSend, s)
		return nil
	}
	t.c.Medium.Send(t.id, to, m, m.WireSize())
	return nil
}

func (t simTransport) Broadcast(m proto.Msg) error {
	t.c.Medium.SendBroadcast(t.id, m, m.WireSize())
	return nil
}

func (t simTransport) CommCost(to radio.NodeID, size int64) float64 {
	if to == t.id {
		return 0
	}
	return t.c.Medium.TxTime(t.id, to, size)
}

// AddNode creates a node, wires its provider to the medium, and returns it.
func (c *Cluster) AddNode(spec NodeSpec) (*Node, error) {
	if _, dup := c.nodes[spec.ID]; dup {
		return nil, fmt.Errorf("core: node %d already exists", spec.ID)
	}
	n := &Node{
		ID:         spec.ID,
		Profile:    spec.Profile,
		organizers: make(map[string]*Organizer),
	}
	n.orgSink = func(svc string) proto.Sink {
		if o := n.organizers[svc]; o != nil {
			return o
		}
		return nil // explicit nil interface, not a typed-nil *Organizer
	}
	var battery *resource.Battery
	if spec.BatteryDrain > 0 {
		battery = resource.NewBattery(spec.Capacity[resource.Energy], spec.BatteryDrain)
		managers := make([]resource.Manager, 0, resource.NumKinds)
		for _, k := range resource.Kinds() {
			if k == resource.Energy {
				managers = append(managers, battery)
			} else {
				managers = append(managers, resource.NewBucket(k, spec.Capacity[k]))
			}
		}
		n.Res = resource.NewSetWith(managers...)
	} else {
		n.Res = resource.NewSet(spec.Capacity)
	}
	n.tr = simTransport{c: c, id: spec.ID}
	if c.retry.Enabled() {
		n.reliable = proto.NewReliable(n.tr, simTimers{c.Eng}, c.retry)
		n.tr = n.reliable
		c.Obs.Register(obs.Retransmissions, n.reliable.RetxCounter())
	}
	c.Obs.Register(obs.Duplicates, &n.dedup.Duplicates)
	pcfg := c.providerCfg
	pcfg.simTransport = true
	n.Provider = NewProvider(spec.ID, n.Res, c.Catalog, n.tr, simTimers{c.Eng}, pcfg)
	c.Obs.Register(obs.StaleReleases, &n.Provider.StaleReleases)
	handler := func(from radio.NodeID, msg any) {
		pm, ok := msg.(proto.Msg)
		if !ok {
			return
		}
		c.dispatch(spec.ID, from, pm)
	}
	if err := c.Medium.Attach(spec.ID, spec.Mobility, spec.RangeM, spec.Bitrate, handler); err != nil {
		return nil, err
	}
	c.nodes[spec.ID] = n
	if battery != nil {
		c.runBattery(spec.ID, battery)
	}
	return n, nil
}

// runBattery drains the node's battery once per simulated second and
// takes the node off the air when it empties.
func (c *Cluster) runBattery(id radio.NodeID, bat *resource.Battery) {
	const tick = 1.0
	var loop func()
	loop = func() {
		if c.Medium.Down(id) {
			return // failed by other means; stop draining
		}
		bat.Drain(tick)
		if bat.Capacity() <= 0 {
			c.FailNode(id)
			return
		}
		c.Eng.After(tick, loop)
	}
	c.Eng.After(tick, loop)
}

// dispatch routes a delivered message through the shared receive
// plumbing (proto.Dispatch): unwrap, dedup, then provider or the
// organizer owning the service, mirroring the paper's role split.
func (c *Cluster) dispatch(at, from radio.NodeID, m proto.Msg) {
	n, ok := c.nodes[at]
	if !ok {
		return
	}
	proto.Dispatch(&n.dedup, from, m, n.orgSink, n.Provider)
}

// Node returns a node by ID, or nil.
func (c *Cluster) Node(id radio.NodeID) *Node {
	return c.nodes[id]
}

// Nodes returns all node IDs, ascending.
func (c *Cluster) Nodes() []radio.NodeID { return c.Medium.NodeIDs() }

// Submit schedules a service request at the given node and simulated
// time; onFormed fires when each (re)formation attempt completes. It
// returns the organizer so callers can dissolve or inspect the coalition.
func (c *Cluster) Submit(at float64, node radio.NodeID, svc *task.Service, cfg OrganizerConfig, onFormed func(*Result)) (*Organizer, error) {
	n, ok := c.nodes[node]
	if !ok {
		return nil, fmt.Errorf("core: unknown node %d", node)
	}
	if err := c.Catalog.RegisterService(svc); err != nil {
		return nil, err
	}
	if _, dup := n.organizers[svc.ID]; dup {
		return nil, fmt.Errorf("core: node %d already organizes service %q", node, svc.ID)
	}
	o, err := NewOrganizer(svc, n.tr, simTimers{c.Eng}, cfg, onFormed)
	if err != nil {
		return nil, err
	}
	n.organizers[svc.ID] = o
	if at < c.Eng.Now() {
		at = c.Eng.Now()
	}
	c.Eng.At(at, o.Start)
	return o, nil
}

// FailNode takes a node off the air (radio down, provider ignoring
// traffic); used by the failure-injection experiments.
func (c *Cluster) FailNode(id radio.NodeID) {
	c.Medium.SetDown(id, true)
	if n, ok := c.nodes[id]; ok {
		n.Provider.SetDown(true)
	}
}

// RecoverNode brings a failed node back.
func (c *Cluster) RecoverNode(id radio.NodeID) {
	c.Medium.SetDown(id, false)
	if n, ok := c.nodes[id]; ok {
		n.Provider.SetDown(false)
	}
}

// RebootNode brings a failed node back with amnesia: its provider's
// reservations, holds and offers are purged before the radio comes up,
// modeling a device that left the neighbourhood and returned with no
// coalition state. The churn engine uses this so nodes that missed a
// Dissolve while off the air do not leak ledger entries forever.
func (c *Cluster) RebootNode(id radio.NodeID) {
	if n, ok := c.nodes[id]; ok {
		n.Provider.Reset()
	}
	c.RecoverNode(id)
}

// RetireService forgets a dissolved organizer so long-running
// open-system simulations do not grow a node's routing table without
// bound. Retiring an organizer that is not Dissolved is an error: its
// timers may still fire and would negotiate against a detached object.
func (c *Cluster) RetireService(node radio.NodeID, svcID string) error {
	n, ok := c.nodes[node]
	if !ok {
		return fmt.Errorf("core: unknown node %d", node)
	}
	o, ok := n.organizers[svcID]
	if !ok {
		return nil // already retired
	}
	if o.State() != Dissolved {
		return fmt.Errorf("core: service %q on node %d is %v, not dissolved", svcID, node, o.State())
	}
	delete(n.organizers, svcID)
	return nil
}

// Run drives the simulation until the horizon (0 = until idle).
func (c *Cluster) Run(until float64) float64 { return c.Eng.Run(until) }

// GridPlacement returns a static position on a sqrt-grid with the given
// spacing; a convenience for experiments that want guaranteed
// connectivity without mobility.
func GridPlacement(i, total int, spacing float64) radio.Static {
	side := int(math.Ceil(math.Sqrt(float64(total))))
	if side == 0 {
		side = 1
	}
	return radio.Static{X: float64(i%side) * spacing, Y: float64(i/side) * spacing}
}
