package core

import (
	"testing"

	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
)

func TestCopiesFor(t *testing.T) {
	avail := resource.V(resource.KV{K: resource.CPU, A: 100}, resource.KV{K: resource.Memory, A: 35})
	demand := resource.V(resource.KV{K: resource.CPU, A: 30}, resource.KV{K: resource.Memory, A: 10})
	if got := copiesFor(avail, demand); got != 3 {
		t.Errorf("copies = %d, want 3 (cpu-bound)", got)
	}
	if got := copiesFor(avail, resource.Vector{}); got != 64 {
		t.Errorf("zero demand copies = %d, want cap 64", got)
	}
	tiny := resource.V(resource.KV{K: resource.CPU, A: 10})
	if got := copiesFor(tiny, demand); got != 1 {
		t.Errorf("copies floor = %d, want 1", got)
	}
}

func cand(node radio.NodeID, task string, dist, comm float64, copies int) Candidate {
	return Candidate{
		Node: node, TaskID: task,
		Level:    qos.Level{{Dim: "d", Attr: "a"}: qos.Int(1)},
		Distance: dist, CommCost: comm, Copies: copies,
	}
}

func TestSelectLowestDistanceWins(t *testing.T) {
	cands := map[string][]Candidate{
		"t0": {cand(1, "t0", 0.5, 0.1, 4), cand(2, "t0", 0.1, 0.9, 4)},
	}
	sel := SelectWinners([]string{"t0"}, cands, DefaultPolicy)
	if len(sel.Assigned) != 1 || sel.Assigned[0].Node != 2 {
		t.Fatalf("selected %+v, want node 2 (lowest evaluation)", sel.Assigned)
	}
}

func TestSelectCommCostBreaksTies(t *testing.T) {
	cands := map[string][]Candidate{
		"t0": {cand(1, "t0", 0.10, 0.9, 4), cand(2, "t0", 0.12, 0.1, 4)},
	}
	// Within eps: comm cost decides.
	sel := SelectWinners([]string{"t0"}, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true})
	if sel.Assigned[0].Node != 2 {
		t.Errorf("within eps the cheaper link must win, got node %d", sel.Assigned[0].Node)
	}
	// Without comm cost: strict distance.
	sel = SelectWinners([]string{"t0"}, cands, SelectionPolicy{DistanceEps: 0.05})
	if sel.Assigned[0].Node != 1 {
		t.Errorf("distance-only must pick node 1, got %d", sel.Assigned[0].Node)
	}
	// Beyond eps: distance decides regardless of comm.
	cands["t0"][1].Distance = 0.5
	sel = SelectWinners([]string{"t0"}, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true})
	if sel.Assigned[0].Node != 1 {
		t.Errorf("outside eps distance must win, got node %d", sel.Assigned[0].Node)
	}
}

func TestSelectConsolidationPacksMembers(t *testing.T) {
	// Three tasks; node 5 can host all three at equal distance; nodes
	// 1-3 are each slightly cheaper for their own task.
	tasks := []string{"t0", "t1", "t2"}
	cands := map[string][]Candidate{
		"t0": {cand(1, "t0", 0, 0.1, 1), cand(5, "t0", 0, 0.2, 3)},
		"t1": {cand(2, "t1", 0, 0.1, 1), cand(5, "t1", 0, 0.2, 3)},
		"t2": {cand(3, "t2", 0, 0.1, 1), cand(5, "t2", 0, 0.2, 3)},
	}
	sel := SelectWinners(tasks, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true, Consolidate: true})
	if got := len(sel.Members()); got != 1 {
		t.Fatalf("members = %v, want the single node 5", sel.Members())
	}
	if sel.Members()[0] != 5 {
		t.Errorf("member = %v", sel.Members())
	}
	// Without consolidation each task takes its cheap local node.
	sel = SelectWinners(tasks, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true})
	if got := len(sel.Members()); got != 3 {
		t.Errorf("plain members = %d, want 3", got)
	}
}

func TestSelectConsolidationRespectsDistanceBand(t *testing.T) {
	// Node 5 could absorb both tasks but its t1 offer is far worse than
	// t1's best; criterion (a) keeps priority, so t1 must not move.
	tasks := []string{"t0", "t1"}
	cands := map[string][]Candidate{
		"t0": {cand(5, "t0", 0.0, 0.2, 2)},
		"t1": {cand(2, "t1", 0.0, 0.1, 1), cand(5, "t1", 0.5, 0.2, 2)},
	}
	sel := SelectWinners(tasks, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true, Consolidate: true})
	byTask := map[string]radio.NodeID{}
	for _, a := range sel.Assigned {
		byTask[a.TaskID] = a.Node
	}
	if byTask["t1"] != 2 {
		t.Errorf("t1 on node %d; consolidation must not sacrifice distance beyond eps", byTask["t1"])
	}
}

func TestSelectBudgetLimitsStacking(t *testing.T) {
	// Node 1 hints capacity for 2 tasks; the third must go to node 2
	// in the same round rather than thrash through award declines.
	tasks := []string{"t0", "t1", "t2"}
	mk := func(tid string) []Candidate {
		return []Candidate{cand(1, tid, 0, 0.1, 2), cand(2, tid, 0, 0.2, 2)}
	}
	cands := map[string][]Candidate{"t0": mk("t0"), "t1": mk("t1"), "t2": mk("t2")}
	sel := SelectWinners(tasks, cands, DefaultPolicy)
	if len(sel.Assigned) != 3 {
		t.Fatalf("assigned %d", len(sel.Assigned))
	}
	count := map[radio.NodeID]int{}
	for _, a := range sel.Assigned {
		count[a.Node]++
	}
	if count[1] != 2 || count[2] != 1 {
		t.Errorf("distribution = %v, want 2 on node 1 and 1 on node 2", count)
	}
}

func TestSelectUnservedWhenBudgetExhausted(t *testing.T) {
	tasks := []string{"t0", "t1"}
	cands := map[string][]Candidate{
		"t0": {cand(1, "t0", 0, 0, 1)},
		"t1": {cand(1, "t1", 0, 0, 1)},
	}
	sel := SelectWinners(tasks, cands, DefaultPolicy)
	if len(sel.Assigned) != 1 || len(sel.Unserved) != 1 {
		t.Errorf("assigned=%d unserved=%v; single-capacity node must not take both", len(sel.Assigned), sel.Unserved)
	}
}

func TestSelectNoCandidates(t *testing.T) {
	sel := SelectWinners([]string{"t0", "t1"}, map[string][]Candidate{
		"t1": {cand(1, "t1", 0, 0, 1)},
	}, DefaultPolicy)
	if len(sel.Unserved) != 1 || sel.Unserved[0] != "t0" {
		t.Errorf("unserved = %v", sel.Unserved)
	}
	if len(sel.Assigned) != 1 {
		t.Errorf("assigned = %v", sel.Assigned)
	}
}

func TestSelectSpreadPolicy(t *testing.T) {
	tasks := []string{"t0", "t1", "t2"}
	mk := func(tid string) []Candidate {
		return []Candidate{cand(1, tid, 0, 0.1, 3), cand(2, tid, 0, 0.2, 3), cand(3, tid, 0, 0.3, 3)}
	}
	cands := map[string][]Candidate{"t0": mk("t0"), "t1": mk("t1"), "t2": mk("t2")}
	sel := SelectWinners(tasks, cands, SelectionPolicy{DistanceEps: 0.05, UseCommCost: true, Spread: true})
	if got := len(sel.Members()); got != 3 {
		t.Errorf("spread members = %d, want 3 (load balancing)", got)
	}
}

func TestSelectionAggregates(t *testing.T) {
	tasks := []string{"t0", "t1"}
	cands := map[string][]Candidate{
		"t0": {cand(1, "t0", 0.1, 0.2, 2)},
		"t1": {cand(1, "t1", 0.3, 0.4, 2)},
	}
	sel := SelectWinners(tasks, cands, DefaultPolicy)
	if d := sel.TotalDistance(); d != 0.4 {
		t.Errorf("TotalDistance = %v", d)
	}
	if c := sel.TotalCommCost(); c != 0.6000000000000001 && c != 0.6 {
		t.Errorf("TotalCommCost = %v", c)
	}
	if m := sel.Members(); len(m) != 1 || m[0] != 1 {
		t.Errorf("Members = %v", m)
	}
}

func TestSelectDeterministic(t *testing.T) {
	tasks := []string{"t0", "t1", "t2", "t3"}
	cands := map[string][]Candidate{}
	for _, tid := range tasks {
		cands[tid] = []Candidate{
			cand(3, tid, 0, 0.3, 2), cand(1, tid, 0, 0.3, 2), cand(2, tid, 0, 0.3, 2),
		}
	}
	first := SelectWinners(tasks, cands, DefaultPolicy)
	for i := 0; i < 10; i++ {
		again := SelectWinners(tasks, cands, DefaultPolicy)
		if len(again.Assigned) != len(first.Assigned) {
			t.Fatal("nondeterministic assignment count")
		}
		for j := range again.Assigned {
			a, b := again.Assigned[j], first.Assigned[j]
			if a.TaskID != b.TaskID || a.Node != b.Node || a.Distance != b.Distance || a.CommCost != b.CommCost {
				t.Fatalf("nondeterministic selection at %d: %+v vs %+v", j, a, b)
			}
		}
	}
}
