package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/workload"
)

// buildCluster makes a fully connected heterogeneous neighbourhood with
// node 0 a phone and the rest alternating PDAs and laptops.
func buildCluster(t *testing.T, n int) *core.Cluster {
	t.Helper()
	cl := core.NewCluster(42, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	for i := 0; i < n; i++ {
		p := workload.Phone
		switch {
		case i == 0:
		case i%2 == 0:
			p = workload.Laptop
		default:
			p = workload.PDA
		}
		spec := workload.NodeSpecFor(radio.NodeID(i), p, core.GridPlacement(i, n, 10))
		if _, err := cl.AddNode(spec); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	return cl
}

func TestFormationEndToEnd(t *testing.T) {
	cl := buildCluster(t, 6)
	svc := workload.StreamService("stream", 3, 1.0)
	var res *core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cl.Run(5)
	if res == nil {
		t.Fatal("formation never completed")
	}
	if !res.Complete() {
		t.Fatalf("unserved tasks: %v", res.Unserved)
	}
	if len(res.Assigned) != 3 {
		t.Fatalf("assigned %d tasks, want 3", len(res.Assigned))
	}
	if org.State() != core.Operating {
		t.Fatalf("state = %v, want operating", org.State())
	}
	// Every assigned node must actually hold the reservation and be
	// running the task after TaskData arrives.
	for tid, a := range res.Assigned {
		n := cl.Node(a.Node)
		found := false
		for _, rt := range n.Provider.RunningTasks("stream") {
			if rt == tid {
				found = true
			}
		}
		if !found {
			t.Errorf("task %s not running on node %d", tid, a.Node)
		}
	}
	// Dissolution releases all reservations everywhere.
	org.Dissolve("test done")
	cl.Run(10)
	for _, id := range cl.Nodes() {
		n := cl.Node(id)
		avail := n.Res.Available()
		cap := n.Res.Capacity()
		if avail != cap {
			t.Errorf("node %d still holds reservations after dissolve: avail %v cap %v", id, avail, cap)
		}
	}
}

func TestFormationPrefersCloserToPreferences(t *testing.T) {
	// A laptop can serve the preferred level; a phone can only serve a
	// degraded one. The organizer must pick the laptop (lowest distance).
	cl := buildCluster(t, 4) // node 0 phone, 1 pda, 2 laptop, 3 pda
	svc := workload.StreamService("s", 1, 1.0)
	var res *core.Result
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	cl.Run(5)
	if res == nil || !res.Complete() {
		t.Fatalf("formation failed: %+v", res)
	}
	a := res.Assigned["t0"]
	if a.Distance != 0 {
		t.Errorf("expected a zero-distance (preferred level) assignment, got %v on node %d", a.Distance, a.Node)
	}
}

func TestReconfigurationAfterFailure(t *testing.T) {
	cl := buildCluster(t, 6)
	svc := workload.StreamService("stream", 2, 1.0)
	var results []*core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(3)
	if len(results) == 0 || !results[0].Complete() {
		t.Fatalf("initial formation failed")
	}
	// Kill one of the winning nodes (not the organizer).
	var victim radio.NodeID = -1
	for _, a := range results[0].Assigned {
		if a.Node != 0 {
			victim = a.Node
			break
		}
	}
	if victim == -1 {
		t.Skip("all tasks ran locally; nothing to fail")
	}
	cl.Eng.At(3, func() { cl.FailNode(victim) })
	cl.Run(20)
	if org.Failures == 0 {
		t.Fatal("monitor never detected the failure")
	}
	if org.Reconfigurations == 0 {
		t.Fatal("organizer never reconfigured")
	}
	// After reconfiguration, no task may remain on the failed node.
	for tid, a := range org.Snapshot() {
		if a.Node == victim {
			t.Errorf("task %s still assigned to failed node %d", tid, victim)
		}
	}
}

func TestBatteryDepletionFailsNode(t *testing.T) {
	cl := core.NewCluster(21, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	// Node 0: organizer, no battery. Node 1: helper with a battery that
	// dies after ~10 s. Node 2: mains-powered laptop.
	spec0 := workload.NodeSpecFor(0, workload.Phone, core.GridPlacement(0, 3, 10))
	spec1 := workload.NodeSpecFor(1, workload.Laptop, core.GridPlacement(1, 3, 10))
	spec1.BatteryDrain = 400 // laptop carries 4000 energy units => dead at ~10 s
	spec2 := workload.NodeSpecFor(2, workload.Laptop, core.GridPlacement(2, 3, 10))
	for _, s := range []core.NodeSpec{spec0, spec1, spec2} {
		if _, err := cl.AddNode(s); err != nil {
			t.Fatal(err)
		}
	}
	svc := workload.StreamService("bat", 1, 1.0)
	var first *core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if first == nil {
			first = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(60)
	if first == nil || !first.Complete() {
		t.Fatalf("formation failed: %+v", first)
	}
	if !cl.Medium.Down(1) {
		t.Fatal("battery node never died")
	}
	if cl.Medium.Down(2) || cl.Medium.Down(0) {
		t.Fatal("mains nodes must not die")
	}
	// Wherever the task started, it must not be on the dead node now.
	for tid, a := range org.Snapshot() {
		if a.Node == 1 {
			t.Errorf("task %s still on battery-dead node", tid)
		}
	}
	if len(org.Snapshot()) != 1 {
		t.Errorf("service lost after battery death: %v", org.Snapshot())
	}
}

func TestTryImproveMigratesToBetterNode(t *testing.T) {
	// Only a phone neighbourhood at first: the service forms at a
	// degraded level. A laptop then arrives; TryImprove must migrate the
	// task to it at a strictly lower distance and release the old
	// reservation.
	cl := core.NewCluster(31, radio.Config{ProcDelay: 0.001}, core.DefaultProviderConfig)
	for i := 0; i < 3; i++ {
		if _, err := cl.AddNode(workload.NodeSpecFor(radio.NodeID(i), workload.Phone, core.GridPlacement(i, 4, 10))); err != nil {
			t.Fatal(err)
		}
	}
	svc := workload.StreamService("up", 1, 0.6) // heavy for a phone: degraded but feasible
	var first *core.Result
	org, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if first == nil {
			first = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(3)
	if first == nil || !first.Complete() {
		t.Fatalf("initial formation failed: %+v", first)
	}
	before := first.Assigned["t0"]
	if before.Distance == 0 {
		t.Fatalf("phones served the preferred level; the upgrade has nothing to show (distance %v)", before.Distance)
	}
	// The laptop walks into range.
	cl.Eng.At(4, func() {
		if _, err := cl.AddNode(workload.NodeSpecFor(3, workload.Laptop, core.GridPlacement(3, 4, 10))); err != nil {
			t.Error(err)
		}
	})
	cl.Eng.At(5, org.TryImprove)
	cl.Run(10)
	after, ok := org.Assignment("t0")
	if !ok {
		t.Fatal("task lost during upgrade")
	}
	if after.Node != 3 {
		t.Fatalf("task stayed on node %d (distance %v); expected migration to the laptop", after.Node, after.Distance)
	}
	if after.Distance >= before.Distance {
		t.Fatalf("upgrade did not improve distance: %v -> %v", before.Distance, after.Distance)
	}
	if org.Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", org.Upgrades)
	}
	// The old node's reservation must be gone.
	old := cl.Node(before.Node)
	if old.Res.Available() != old.Res.Capacity() {
		t.Errorf("old node still holds %v", old.Res.Capacity().Sub(old.Res.Available()))
	}
	// The coalition keeps operating and a second TryImprove with no
	// better offers changes nothing.
	cl.Eng.At(11, org.TryImprove)
	cl.Run(15)
	final, _ := org.Assignment("t0")
	if final.Node != 3 || org.Upgrades != 1 {
		t.Errorf("idempotent upgrade violated: %+v upgrades=%d", final, org.Upgrades)
	}
}

func TestUnservableServiceReportsUnserved(t *testing.T) {
	cl := buildCluster(t, 3)
	// Demand scaled far past any node's capacity.
	svc := workload.StreamService("huge", 2, 1000)
	var res *core.Result
	if _, err := cl.Submit(0, 0, svc, core.DefaultOrganizerConfig, func(r *core.Result) {
		if res == nil {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	cl.Run(10)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Complete() || len(res.Unserved) != 2 {
		t.Fatalf("expected 2 unserved tasks, got %+v", res)
	}
	if res.Rounds != core.DefaultOrganizerConfig.MaxRounds {
		t.Errorf("rounds = %d, want %d (exhausted renegotiation)", res.Rounds, core.DefaultOrganizerConfig.MaxRounds)
	}
}
