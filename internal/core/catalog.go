package core

import (
	"fmt"
	"sync"

	"repro/internal/qos"
	"repro/internal/task"
)

// Catalog is the shared application metadata every node knows a priori:
// QoS specs by name and demand models by reference. The paper assumes
// applications publish "a reasonably accurate analysis of their resource
// requirements ... made a priori"; the catalog is that published
// analysis, so CFPs only need to carry names, not models.
type Catalog struct {
	mu      sync.RWMutex
	specs   map[string]*qos.Spec
	demands map[string]task.DemandModel
}

// NewCatalog builds an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{specs: make(map[string]*qos.Spec), demands: make(map[string]task.DemandModel)}
}

// AddSpec registers a validated spec under its name.
func (c *Catalog) AddSpec(s *qos.Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.specs[s.Name]; dup {
		return fmt.Errorf("core: catalog already has spec %q", s.Name)
	}
	c.specs[s.Name] = s
	return nil
}

// AddDemand registers a demand model under a reference name.
func (c *Catalog) AddDemand(ref string, dm task.DemandModel) error {
	if dm == nil {
		return fmt.Errorf("core: nil demand model for %q", ref)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.demands[ref]; dup {
		return fmt.Errorf("core: catalog already has demand %q", ref)
	}
	c.demands[ref] = dm
	return nil
}

// Spec resolves a spec by name.
func (c *Catalog) Spec(name string) (*qos.Spec, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.specs[name]
	return s, ok
}

// Demand resolves a demand model by reference.
func (c *Catalog) Demand(ref string) (task.DemandModel, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.demands[ref]
	return d, ok
}

// RegisterService adds the service's spec (if absent) and returns CFP
// task descriptors with demand references of the form "svc/task",
// registering each task's demand model under that reference.
func (c *Catalog) RegisterService(s *task.Service) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	if _, ok := c.specs[s.Spec.Name]; !ok {
		c.specs[s.Spec.Name] = s.Spec
	}
	c.mu.Unlock()
	for _, t := range s.Tasks {
		ref := t.Ref(s.ID)
		c.mu.Lock()
		if _, dup := c.demands[ref]; !dup {
			c.demands[ref] = t.Demand
		}
		c.mu.Unlock()
	}
	return nil
}
