package core

import (
	"math"
	"testing"

	"repro/internal/proto"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/sim"
)

// recTransport records everything an organizer sends and lets the test
// inject replies by hand.
type recTransport struct {
	self       radio.NodeID
	sent       []sentMsg
	broadcasts []proto.Msg
	comm       map[radio.NodeID]float64
}

type sentMsg struct {
	to radio.NodeID
	m  proto.Msg
}

func (r *recTransport) Self() radio.NodeID { return r.self }
func (r *recTransport) Send(to radio.NodeID, m proto.Msg) error {
	r.sent = append(r.sent, sentMsg{to: to, m: m})
	return nil
}
func (r *recTransport) Broadcast(m proto.Msg) error {
	r.broadcasts = append(r.broadcasts, m)
	return nil
}
func (r *recTransport) CommCost(to radio.NodeID, _ int64) float64 {
	if c, ok := r.comm[to]; ok {
		return c
	}
	return 0.01
}

// harness wires an organizer to a manual clock and recording transport.
type harness struct {
	eng *sim.Engine
	tr  *recTransport
	org *Organizer
	res []*Result
}

func newHarness(t *testing.T, cfg OrganizerConfig) *harness {
	t.Helper()
	h := &harness{
		eng: sim.New(1),
		tr:  &recTransport{self: 0, comm: map[radio.NodeID]float64{}},
	}
	svc := deterministicService()
	org, err := NewOrganizer(svc, h.tr, simTimers{h.eng}, cfg, func(r *Result) {
		h.res = append(h.res, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	h.org = org
	return h
}

// level returns an admissible level for the deterministic service at the
// given rate/depth.
func detLevel(rate int64, depth int64) qos.Level {
	return qos.Level{
		{Dim: "q", Attr: "rate"}:  qos.Int(rate),
		{Dim: "q", Attr: "depth"}: qos.Int(depth),
	}
}

func propose(h *harness, from radio.NodeID, round int, level qos.Level, copies int, tasks ...string) {
	m := &proto.Proposal{ServiceID: "det", Round: round}
	for _, tid := range tasks {
		m.Tasks = append(m.Tasks, proto.TaskProposal{TaskID: tid, Level: level, Reward: 1, Copies: copies})
	}
	h.org.OnMsg(from, m)
}

// awardsTo extracts the award sent to a node this round, if any.
func awardsTo(h *harness, node radio.NodeID) *proto.Award {
	for _, s := range h.tr.sent {
		if a, ok := s.m.(*proto.Award); ok && s.to == node {
			return a
		}
	}
	return nil
}

func TestOrganizerHappyPath(t *testing.T) {
	cfg := DefaultOrganizerConfig
	cfg.Monitor = false
	h := newHarness(t, cfg)
	h.org.Start()
	h.eng.Run(0.1) // deliver Start's events; CFP broadcast + self send
	if len(h.tr.broadcasts) != 1 {
		t.Fatalf("broadcasts = %d, want 1 CFP", len(h.tr.broadcasts))
	}
	cfp := h.tr.broadcasts[0].(*proto.CFP)
	if len(cfp.Tasks) != 3 || cfp.Round != 0 {
		t.Fatalf("cfp = %+v", cfp)
	}
	// Node 1 proposes the preferred level for all tasks.
	propose(h, 1, 0, detLevel(20, 8), 3, "s0", "s1", "s2")
	h.eng.Run(0.3) // past ProposalWait (awards out) but before AckWait expiry
	aw := awardsTo(h, 1)
	if aw == nil || len(aw.TaskIDs) != 3 {
		t.Fatalf("award = %+v", aw)
	}
	// Node 1 accepts everything.
	h.org.OnMsg(1, &proto.AwardAck{ServiceID: "det", Round: 0, TaskIDs: aw.TaskIDs, OK: true})
	h.eng.Run(2)
	if len(h.res) != 1 {
		t.Fatalf("results = %d", len(h.res))
	}
	if !h.res[0].Complete() || h.res[0].Rounds != 1 {
		t.Fatalf("result = %+v", h.res[0])
	}
	// TaskData must have been shipped for each accepted task.
	data := 0
	for _, s := range h.tr.sent {
		if _, ok := s.m.(*proto.TaskData); ok {
			data++
		}
	}
	if data != 3 {
		t.Errorf("task data messages = %d, want 3", data)
	}
}

func TestOrganizerIgnoresStaleAndBogusProposals(t *testing.T) {
	cfg := DefaultOrganizerConfig
	cfg.Monitor = false
	cfg.MaxRounds = 1
	h := newHarness(t, cfg)
	h.org.Start()
	h.eng.Run(0.1)
	// Wrong round.
	propose(h, 1, 5, detLevel(20, 8), 3, "s0")
	// Wrong service.
	h.org.OnMsg(2, &proto.Proposal{ServiceID: "other", Round: 0,
		Tasks: []proto.TaskProposal{{TaskID: "s0", Level: detLevel(20, 8)}}})
	// Unknown task.
	propose(h, 3, 0, detLevel(20, 8), 3, "zz")
	// Inadmissible level (rate outside accepted span).
	propose(h, 4, 0, detLevel(1, 8), 3, "s0")
	// Unreachable node.
	h.tr.comm[5] = math.Inf(1)
	propose(h, 5, 0, detLevel(20, 8), 3, "s0")
	h.eng.Run(2)
	if len(h.res) != 1 {
		t.Fatalf("results = %d", len(h.res))
	}
	if len(h.res[0].Assigned) != 0 || len(h.res[0].Unserved) != 3 {
		t.Fatalf("bogus proposals were accepted: %+v", h.res[0])
	}
	// Late proposal after the formation finished changes nothing.
	propose(h, 1, 0, detLevel(20, 8), 3, "s0")
	if len(h.org.Snapshot()) != 0 {
		t.Error("late proposal mutated assignments")
	}
}

func TestOrganizerRenegotiatesDeclines(t *testing.T) {
	cfg := DefaultOrganizerConfig
	cfg.Monitor = false
	h := newHarness(t, cfg)
	h.org.Start()
	h.eng.Run(0.1)
	propose(h, 1, 0, detLevel(20, 8), 3, "s0", "s1", "s2")
	h.eng.Run(0.3) // awards out, ack window still open
	aw := awardsTo(h, 1)
	if aw == nil {
		t.Fatal("no award")
	}
	// Node 1 accepts only s0 (resources changed since proposal).
	h.org.OnMsg(1, &proto.AwardAck{ServiceID: "det", Round: 0, TaskIDs: []string{"s0"}, OK: false})
	// Round 1 CFP must go out for the two declined tasks (finishRound(0)
	// fires at t=0.5 and immediately starts round 1).
	h.eng.Run(0.55)
	if len(h.tr.broadcasts) < 2 {
		t.Fatalf("no renegotiation CFP (broadcasts=%d)", len(h.tr.broadcasts))
	}
	cfp2 := h.tr.broadcasts[1].(*proto.CFP)
	if cfp2.Round != 1 || len(cfp2.Tasks) != 2 {
		t.Fatalf("round-1 CFP = %+v", cfp2)
	}
	// Node 2 serves them.
	propose(h, 2, 1, detLevel(20, 8), 2, "s1", "s2")
	h.eng.Run(0.8) // round-1 awards out at t=0.75, ack window open
	aw2 := awardsTo(h, 2)
	if aw2 == nil || len(aw2.TaskIDs) != 2 {
		t.Fatalf("round-1 award = %+v", aw2)
	}
	h.org.OnMsg(2, &proto.AwardAck{ServiceID: "det", Round: 1, TaskIDs: aw2.TaskIDs, OK: true})
	h.eng.Run(3)
	if len(h.res) != 1 || !h.res[0].Complete() || h.res[0].Rounds != 2 {
		t.Fatalf("result = %+v", h.res)
	}
}

func TestOrganizerIgnoresAckFromWrongNode(t *testing.T) {
	cfg := DefaultOrganizerConfig
	cfg.Monitor = false
	cfg.MaxRounds = 1
	h := newHarness(t, cfg)
	h.org.Start()
	h.eng.Run(0.1)
	propose(h, 1, 0, detLevel(20, 8), 3, "s0", "s1", "s2")
	h.eng.Run(0.3)
	// Node 2 (never awarded) claims acceptance.
	h.org.OnMsg(2, &proto.AwardAck{ServiceID: "det", Round: 0, TaskIDs: []string{"s0"}, OK: true})
	h.eng.Run(2)
	for tid, a := range h.res[0].Assigned {
		if a.Node == 2 {
			t.Errorf("task %s assigned to impostor node 2", tid)
		}
	}
}

func TestOrganizerDissolveStopsNegotiation(t *testing.T) {
	cfg := DefaultOrganizerConfig
	h := newHarness(t, cfg)
	h.org.Start()
	h.eng.Run(0.1)
	h.org.Dissolve("user cancelled")
	if h.org.State() != Dissolved {
		t.Fatal("not dissolved")
	}
	// A Dissolve must have been broadcast.
	found := false
	for _, m := range h.tr.broadcasts {
		if _, ok := m.(*proto.Dissolve); ok {
			found = true
		}
	}
	if !found {
		t.Error("no dissolve broadcast")
	}
	// Subsequent rounds and proposals are inert.
	propose(h, 1, 0, detLevel(20, 8), 3, "s0")
	h.eng.Run(5)
	if len(h.res) != 0 {
		t.Error("formation completed after dissolution")
	}
	// Dissolving twice is a no-op.
	h.org.Dissolve("again")
}

func TestOrganizerValidatesService(t *testing.T) {
	tr := &recTransport{self: 0}
	eng := sim.New(1)
	svc := deterministicService()
	svc.Tasks[0].ID = svc.Tasks[1].ID // duplicate
	if _, err := NewOrganizer(svc, tr, simTimers{eng}, DefaultOrganizerConfig, nil); err == nil {
		t.Error("invalid service accepted")
	}
}

func TestOrganizerMonitorSelfTaskNeedsNoHeartbeat(t *testing.T) {
	// A task the organizer serves itself must never be declared failed
	// by the monitor (no radio heartbeat for local execution).
	cfg := DefaultOrganizerConfig
	cfg.HeartbeatTimeout = 0.5
	h := newHarness(t, cfg)
	h.org.Start()
	h.eng.Run(0.1)
	propose(h, 0, 0, detLevel(20, 8), 3, "s0", "s1", "s2") // self-proposal
	h.eng.Run(0.3)
	aw := awardsTo(h, 0)
	if aw == nil {
		t.Fatal("no self award")
	}
	h.org.OnMsg(0, &proto.AwardAck{ServiceID: "det", Round: 0, TaskIDs: aw.TaskIDs, OK: true})
	h.eng.Run(30) // many heartbeat windows with no heartbeats at all
	if h.org.Failures != 0 {
		t.Errorf("monitor declared %d failures for locally served tasks", h.org.Failures)
	}
	if len(h.org.Snapshot()) != 3 {
		t.Errorf("local tasks lost: %v", h.org.Snapshot())
	}
}
