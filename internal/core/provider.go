package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/resource"
	"repro/internal/task"
	"repro/internal/trace"
)

// ProviderConfig tunes a node's QoS Provider.
type ProviderConfig struct {
	// GridSteps discretizes continuous accepted spans (qos.BuildLadder).
	GridSteps int
	// Penalty is the reward penalty function (nil = qos.DefaultPenalty).
	Penalty qos.PenaltyFunc
	// Hold makes proposals tentatively reserve their demand until
	// HoldTimeout expires or an award converts them. Without holds a
	// provider may over-promise across concurrent negotiations and
	// decline at award time (the organizer then renegotiates).
	Hold        bool
	HoldTimeout float64
	// HeartbeatEvery is the operation-phase liveness period (seconds);
	// zero disables heartbeats.
	HeartbeatEvery float64
	// Trace receives protocol events (nil = no tracing).
	Trace trace.Tracer

	// simTransport marks the transport as the cluster's single-threaded
	// in-engine transport, where a delivered message is consumed before
	// the sender runs again. It lets the heartbeat loop reuse one message
	// and task buffer per service instead of allocating per tick. Only
	// Cluster.AddNode sets it; goroutine-backed transports (internal/live)
	// must leave it false.
	simTransport bool
}

// DefaultProviderConfig is the configuration used by the experiments.
var DefaultProviderConfig = ProviderConfig{
	GridSteps:      qos.DefaultGridSteps,
	HoldTimeout:    2.0,
	HeartbeatEvery: 0.5,
}

type offerKey struct {
	svc   string
	round int
	task  string
}

// compiledKey caches compiled formulation problems per CFP demand
// reference. A demand reference is immutable once registered in the
// catalog (AddDemand rejects duplicates, RegisterService keeps the
// first), so the same (spec, ref) pair always names the same demand
// model; the cached entry still remembers the request and is recompiled
// if a CFP ever carries a different one under the same reference.
type compiledKey struct {
	spec string
	ref  string
}

type compiledEntry struct {
	req qos.Request
	cp  *CompiledProblem

	// Formulate memo. The Section 5 heuristic is a pure function of the
	// node's availability vector: the degradation path depends only on
	// the reward table, and availability merely picks the stopping point
	// (CanReserve reads nothing but Available()). Formulations are
	// immutable once built, so when availability has not changed since
	// the last formulation of this problem the previous result is
	// returned as-is. Only the single-threaded sim transport uses the
	// memo; goroutine-backed deployments recompute.
	lastAvail resource.Vector
	lastF     *Formulation
	lastErr   error
	haveLast  bool
}

// reservationEntry is one firm reservation plus the negotiation round
// that placed it. The round guards release replay: a TaskRelease issued
// for an old placement (then delayed or duplicated by a faulty medium)
// must not free a reservation a later round re-awarded to the same node
// (DESIGN.md §12).
type reservationEntry struct {
	id    resource.ReservationID
	round int
}

type serviceState struct {
	organizer    radio.NodeID
	reservations map[string]reservationEntry // task -> firm reservation
	running      map[string]bool             // task -> data received
	hbActive     bool
	hbTick       func()           // persistent heartbeat closure, built once
	hbMsg        *proto.Heartbeat // reused message (simTransport only)
}

// Provider is the paper's QoS Provider: "a server that negotiates access
// to node's resources ... it will contact the Resource Managers to grant
// specific resource amounts to the requesting task" (Section 4.1). It
// answers CFPs with multi-attribute proposals formulated by the local
// QoS optimization heuristic, converts awards into firm reservations,
// executes tasks, and emits heartbeats during coalition operation.
type Provider struct {
	ID  radio.NodeID
	Res *resource.Set

	cat *Catalog
	tr  proto.Transport
	tm  proto.Timers
	cfg ProviderConfig

	mu       sync.Mutex
	offers   map[offerKey]*Formulation
	services map[string]*serviceState
	holds    map[offerKey]resource.ReservationID
	compiled map[compiledKey]*compiledEntry
	down     bool
	traceOn  bool

	// Stats for the experiments.
	CFPs      int
	Proposals int
	Accepts   int
	Declines  int
	// StaleReleases counts TaskRelease messages refused because their
	// round predated the round that placed the current reservation; it
	// registers into the cluster's obs.Registry as obs.StaleReleases.
	StaleReleases obs.Counter
}

// NewProvider wires a provider to its node's resources, the shared
// catalog, and a transport/timer pair.
func NewProvider(id radio.NodeID, res *resource.Set, cat *Catalog, tr proto.Transport, tm proto.Timers, cfg ProviderConfig) *Provider {
	if cfg.GridSteps <= 0 {
		cfg.GridSteps = qos.DefaultGridSteps
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Nop{}
	}
	_, nop := cfg.Trace.(trace.Nop)
	return &Provider{
		ID: id, Res: res, cat: cat, tr: tr, tm: tm, cfg: cfg, traceOn: !nop,
		offers:   make(map[offerKey]*Formulation),
		services: make(map[string]*serviceState),
		holds:    make(map[offerKey]resource.ReservationID),
		compiled: make(map[compiledKey]*compiledEntry),
	}
}

// SetDown marks the provider failed; failed providers ignore all traffic
// and stop heartbeating (their radio is down too, but timers keep firing).
func (p *Provider) SetDown(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

// OnMsg dispatches a delivered protocol message to the provider's
// handlers. Unknown message kinds are ignored (they belong to the
// organizer role).
func (p *Provider) OnMsg(from radio.NodeID, m proto.Msg) {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	switch msg := m.(type) {
	case *proto.CFP:
		p.onCFP(from, msg)
	case *proto.Award:
		p.onAward(from, msg)
	case *proto.TaskData:
		p.onTaskData(from, msg)
	case *proto.TaskRelease:
		p.onTaskRelease(from, msg)
	case *proto.Dissolve:
		p.onDissolve(from, msg)
	}
}

// onCFP implements step (2) of the negotiation algorithm: "each QoS
// Provider contacts its Resource Managers and replies with a
// multi-attribute proposal".
func (p *Provider) onCFP(from radio.NodeID, m *proto.CFP) {
	p.mu.Lock()
	p.CFPs++
	p.mu.Unlock()
	spec, ok := p.cat.Spec(m.SpecName)
	if !ok {
		return
	}
	reply := &proto.Proposal{ServiceID: m.ServiceID, Round: m.Round}
	for i := range m.Tasks {
		td := &m.Tasks[i]
		dm, ok := p.cat.Demand(td.DemandRef)
		if !ok {
			continue
		}
		e, err := p.compileFor(m.SpecName, td.DemandRef, spec, &td.Request, dm)
		if err != nil {
			continue
		}
		f, err := p.formulate(e)
		if err != nil {
			continue
		}
		key := offerKey{svc: m.ServiceID, round: m.Round, task: td.TaskID}
		p.mu.Lock()
		p.offers[key] = f
		p.mu.Unlock()
		if p.cfg.Hold {
			p.placeHold(key, f)
		}
		reply.Tasks = append(reply.Tasks, proto.TaskProposal{
			TaskID: td.TaskID, Level: f.Level, Reward: f.Reward,
			Copies: copiesFor(p.Res.Available(), f.Demand),
		})
	}
	if len(reply.Tasks) == 0 {
		if p.traceOn {
			p.emit("no-offer", fmt.Sprintf("service %s round %d: nothing schedulable", m.ServiceID, m.Round))
		}
		return
	}
	p.mu.Lock()
	p.Proposals++
	p.mu.Unlock()
	if p.traceOn {
		p.emit("propose", fmt.Sprintf("service %s round %d: %d task(s)", m.ServiceID, m.Round, len(reply.Tasks)))
	}
	p.tr.Send(from, reply)
}

// formulate runs the compiled problem against current availability,
// reusing the entry's memoized Formulation when availability is unchanged
// (see compiledEntry). The memo only engages on the single-threaded sim
// transport, where the availability snapshot cannot race a reservation.
func (p *Provider) formulate(e *compiledEntry) (*Formulation, error) {
	if !p.cfg.simTransport {
		return e.cp.Formulate(p.Res.CanReserve)
	}
	avail := p.Res.Available()
	if e.haveLast && avail == e.lastAvail {
		return e.lastF, e.lastErr
	}
	f, err := e.cp.Formulate(p.Res.CanReserve)
	e.lastAvail, e.lastF, e.lastErr, e.haveLast = avail, f, err, true
	return f, err
}

// compileFor returns the cached compiled formulation problem for one
// CFP task, compiling on first sight. Renegotiation rounds, concurrent
// negotiations over the same service, and monitor-driven reformations
// all re-CFP the same (request, demand) pairs, so the ladder and the
// slot tables are built once per provider instead of once per proposal.
// The cached request copy guards the cache against a reference ever
// being reused with a different request: equality is checked and a
// mismatch recompiles.
func (p *Provider) compileFor(specName, ref string, spec *qos.Spec, req *qos.Request, dm task.DemandModel) (*compiledEntry, error) {
	key := compiledKey{spec: specName, ref: ref}
	p.mu.Lock()
	e, ok := p.compiled[key]
	p.mu.Unlock()
	if ok && e.req.Equal(req) {
		return e, nil
	}
	e = &compiledEntry{req: *req}
	cp, err := CompileProblem(spec, &e.req, dm, p.cfg.GridSteps, p.cfg.Penalty)
	if err != nil {
		return nil, err
	}
	e.cp = cp
	p.mu.Lock()
	p.compiled[key] = e
	p.mu.Unlock()
	return e, nil
}

// emit publishes a trace event stamped with this provider's clock.
func (p *Provider) emit(kind, detail string) {
	p.cfg.Trace.Emit(trace.Event{
		T: p.tm.Now(), Node: int(p.ID), Role: "provider", Kind: kind, Detail: detail,
	})
}

// copiesFor computes the capacity hint: the largest k such that k copies
// of demand fit in avail, capped at 64 for mains-powered giants.
func copiesFor(avail, demand resource.Vector) int {
	k := 64
	for i := range demand {
		if demand[i] <= 0 {
			continue
		}
		fit := int(avail[i] / demand[i])
		if fit < k {
			k = fit
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (p *Provider) placeHold(key offerKey, f *Formulation) {
	id := resource.ReservationID(fmt.Sprintf("hold:%s/%d/%s@%d", key.svc, key.round, key.task, p.ID))
	if err := p.Res.Reserve(id, f.Demand); err != nil {
		return // hold is best-effort; award-time reservation still decides
	}
	p.mu.Lock()
	p.holds[key] = id
	p.mu.Unlock()
	timeout := p.cfg.HoldTimeout
	if timeout <= 0 {
		timeout = 2.0
	}
	p.tm.After(timeout, func() {
		p.mu.Lock()
		held, ok := p.holds[key]
		if ok && held == id {
			delete(p.holds, key)
		}
		p.mu.Unlock()
		if ok {
			p.Res.Release(id)
		}
	})
}

// onAward converts remembered offers into firm reservations and
// acknowledges which tasks the node actually accepted.
func (p *Provider) onAward(from radio.NodeID, m *proto.Award) {
	var accepted []string
	var declined []string
	for _, tid := range m.TaskIDs {
		key := offerKey{svc: m.ServiceID, round: m.Round, task: tid}
		p.mu.Lock()
		f, ok := p.offers[key]
		holdID, held := p.holds[key]
		if held {
			delete(p.holds, key)
		}
		p.mu.Unlock()
		if held {
			p.Res.Release(holdID)
		}
		if !ok {
			declined = append(declined, tid)
			continue
		}
		firm := resource.ReservationID(m.ServiceID + "/" + tid)
		if err := p.Res.Reserve(firm, f.Demand); err != nil {
			declined = append(declined, tid)
			continue
		}
		accepted = append(accepted, tid)
		p.mu.Lock()
		st := p.serviceStateLocked(m.ServiceID)
		st.organizer = from
		st.reservations[tid] = reservationEntry{id: firm, round: m.Round}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.Accepts += len(accepted)
	p.Declines += len(declined)
	p.mu.Unlock()
	ack := &proto.AwardAck{
		ServiceID: m.ServiceID, Round: m.Round,
		TaskIDs: accepted, OK: len(declined) == 0,
	}
	if len(declined) > 0 {
		ack.Reason = fmt.Sprintf("declined %d of %d tasks (resources changed since proposal)", len(declined), len(m.TaskIDs))
		if p.traceOn {
			p.emit("decline", fmt.Sprintf("service %s: %v", m.ServiceID, declined))
		}
	}
	if len(accepted) > 0 {
		if p.traceOn {
			p.emit("reserve", fmt.Sprintf("service %s: %v", m.ServiceID, accepted))
		}
	}
	p.tr.Send(from, ack)
}

// onTaskData marks the task running and starts the heartbeat loop; in a
// real deployment this is where execution would begin.
func (p *Provider) onTaskData(from radio.NodeID, m *proto.TaskData) {
	p.mu.Lock()
	st := p.serviceStateLocked(m.ServiceID)
	if _, reserved := st.reservations[m.TaskID]; !reserved {
		p.mu.Unlock()
		return
	}
	st.running[m.TaskID] = true
	start := p.armHeartbeatLocked(st)
	p.mu.Unlock()
	if start {
		p.heartbeatLoop(m.ServiceID)
	}
}

// armHeartbeatLocked marks the service's heartbeat loop active if it
// should start; the caller must hold p.mu and, on true, call
// heartbeatLoop after unlocking.
func (p *Provider) armHeartbeatLocked(st *serviceState) bool {
	if p.cfg.HeartbeatEvery <= 0 || st.hbActive {
		return false
	}
	st.hbActive = true
	return true
}

func (p *Provider) heartbeatLoop(svc string) {
	p.mu.Lock()
	st, ok := p.services[svc]
	if !ok {
		p.mu.Unlock()
		return
	}
	if st.hbTick == nil {
		// One closure per service for its whole life, not one per tick.
		st.hbTick = func() { p.heartbeatTick(svc) }
	}
	fn := st.hbTick
	p.mu.Unlock()
	p.tm.After(p.cfg.HeartbeatEvery, fn)
}

func (p *Provider) heartbeatTick(svc string) {
	p.mu.Lock()
	st, ok := p.services[svc]
	if !ok || p.down || len(st.running) == 0 {
		if ok {
			st.hbActive = false
		}
		p.mu.Unlock()
		return
	}
	var msg *proto.Heartbeat
	if p.cfg.simTransport {
		// The in-engine transport reads WireSize at send time and the
		// organizer end consumes only ServiceID, so one message and task
		// buffer per service is observably identical to fresh copies.
		if st.hbMsg == nil {
			st.hbMsg = &proto.Heartbeat{ServiceID: svc}
		}
		msg = st.hbMsg
		msg.TaskIDs = msg.TaskIDs[:0]
	} else {
		msg = &proto.Heartbeat{ServiceID: svc, TaskIDs: make([]string, 0, len(st.running))}
	}
	for tid := range st.running {
		msg.TaskIDs = append(msg.TaskIDs, tid)
	}
	org := st.organizer
	p.mu.Unlock()
	p.tr.Send(org, msg)
	p.heartbeatLoop(svc)
}

// onTaskRelease frees one task's reservation without touching the rest
// of the service (quality-upgrade migration). Releases stamped with a
// round older than the round that placed the current reservation are
// refused: they are replays of a release that already did its work
// before the task came back to this node, and honouring them would free
// the newer placement (the Section §12 replay-safety guard, on top of
// the sequence-number dedup that covers retransmitted traffic).
func (p *Provider) onTaskRelease(_ radio.NodeID, m *proto.TaskRelease) {
	p.mu.Lock()
	st, ok := p.services[m.ServiceID]
	var id resource.ReservationID
	if ok {
		var entry reservationEntry
		entry, ok = st.reservations[m.TaskID]
		if ok && m.Round < entry.round {
			p.StaleReleases.Inc()
			ok = false
		} else if ok {
			id = entry.id
			delete(st.reservations, m.TaskID)
			delete(st.running, m.TaskID)
		}
	}
	p.mu.Unlock()
	if ok {
		p.Res.Release(id)
		if p.traceOn {
			p.emit("release", fmt.Sprintf("service %s task %s: %s", m.ServiceID, m.TaskID, m.Reason))
		}
	}
}

// AdoptReservation installs a firm reservation for one task as if an
// award had been accepted: the adaptation engine's direct re-placement
// path, used when a live session's task migrates to this node outside a
// protocol round. The reservation joins the provider's per-service state,
// so dissolution, release and reboot flows treat it exactly like an
// award-time reservation; the task is marked running so heartbeats flow
// to the organizer. Fails without side effects when the demand does not
// fit the node's free capacity.
func (p *Provider) AdoptReservation(org radio.NodeID, svc, tid string, demand resource.Vector) error {
	id := resource.ReservationID(svc + "/" + tid)
	if err := p.Res.Reserve(id, demand); err != nil {
		return err
	}
	p.mu.Lock()
	st := p.serviceStateLocked(svc)
	st.organizer = org
	// Adoption happens outside a protocol round; round 0 means any
	// round-stamped release may free it.
	st.reservations[tid] = reservationEntry{id: id}
	st.running[tid] = true
	start := p.armHeartbeatLocked(st)
	p.mu.Unlock()
	if start {
		p.heartbeatLoop(svc)
	}
	if p.traceOn {
		p.emit("adopt", fmt.Sprintf("service %s task %s: adopted at demand %v", svc, tid, demand))
	}
	return nil
}

// ResizeReservation swaps one task's firm reservation for the same task
// at a new demand — a mid-session degrade (smaller demand) or upgrade
// (larger demand). The swap is exact: the old reservation is released
// and the new one placed under the same ID within one event, and on an
// upgrade that no longer fits the old reservation is restored, so the
// ledger never drifts whatever the outcome.
func (p *Provider) ResizeReservation(svc, tid string, demand resource.Vector) error {
	p.mu.Lock()
	st, ok := p.services[svc]
	var id resource.ReservationID
	if ok {
		var entry reservationEntry
		entry, ok = st.reservations[tid]
		id = entry.id
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: node %d holds no reservation for %s/%s", p.ID, svc, tid)
	}
	old := p.Res.Release(id)
	if err := p.Res.Reserve(id, demand); err != nil {
		if rerr := p.Res.Reserve(id, old); rerr != nil {
			return fmt.Errorf("core: resize rollback failed on node %d for %s/%s: %v (after %w)", p.ID, svc, tid, rerr, err)
		}
		return err
	}
	return nil
}

// DropTask releases one task's reservation and state directly, without a
// TaskRelease message: the adaptation engine cleans a failed node's
// ledger this way, since no protocol message can reach a node that is
// off the air. A missing reservation is a no-op.
func (p *Provider) DropTask(svc, tid string) {
	p.mu.Lock()
	st, ok := p.services[svc]
	var id resource.ReservationID
	if ok {
		var entry reservationEntry
		entry, ok = st.reservations[tid]
		if ok {
			id = entry.id
			delete(st.reservations, tid)
			delete(st.running, tid)
		}
	}
	p.mu.Unlock()
	if ok {
		p.Res.Release(id)
	}
}

// onDissolve releases every reservation held for the service.
func (p *Provider) onDissolve(_ radio.NodeID, m *proto.Dissolve) {
	p.ReleaseService(m.ServiceID)
	if p.traceOn {
		p.emit("dissolve", fmt.Sprintf("service %s: %s", m.ServiceID, m.Reason))
	}
}

// ReleaseService frees all firm reservations and state for a service
// (dissolution, or local cleanup in tests).
func (p *Provider) ReleaseService(svc string) {
	p.mu.Lock()
	st, ok := p.services[svc]
	if ok {
		delete(p.services, svc)
	}
	for key := range p.offers {
		if key.svc == svc {
			delete(p.offers, key)
		}
	}
	var holdIDs []resource.ReservationID
	for key, id := range p.holds {
		if key.svc == svc {
			holdIDs = append(holdIDs, id)
			delete(p.holds, key)
		}
	}
	p.mu.Unlock()
	for _, id := range holdIDs {
		p.Res.Release(id)
	}
	if ok {
		for _, entry := range st.reservations {
			p.Res.Release(entry.id)
		}
	}
}

// ServiceIDs lists the services for which this provider currently holds
// at least one firm reservation, sorted for deterministic iteration.
// The session reconciliation sweep walks this to find orphans: services
// a frozen-then-recovered node still accounts for after the coalition
// moved on without it.
func (p *Provider) ServiceIDs() []string {
	p.mu.Lock()
	out := make([]string, 0, len(p.services))
	for svc, st := range p.services {
		if len(st.reservations) > 0 {
			out = append(out, svc)
		}
	}
	p.mu.Unlock()
	sort.Strings(out)
	return out
}

// ReservedTasks lists the tasks of one service this provider holds firm
// reservations for, sorted; the reconciliation sweep compares them
// against the organizer's current assignments.
func (p *Provider) ReservedTasks(svc string) []string {
	p.mu.Lock()
	var out []string
	if st, ok := p.services[svc]; ok {
		out = make([]string, 0, len(st.reservations))
		for tid := range st.reservations {
			out = append(out, tid)
		}
	}
	p.mu.Unlock()
	sort.Strings(out)
	return out
}

// Reset drops the provider's entire soft state: every firm reservation,
// tentative hold, and remembered offer across all services. It models a
// reboot — a node that left the neighbourhood (churn) and came back has
// lost its coalition state, so its Resource Managers must not keep
// stale ledger entries for services whose dissolution it missed while
// off the air. Counters are kept: they describe the node's history, not
// its live state.
func (p *Provider) Reset() {
	p.mu.Lock()
	svcs := make(map[string]bool, len(p.services))
	for s := range p.services {
		svcs[s] = true
	}
	for key := range p.offers {
		svcs[key.svc] = true
	}
	for key := range p.holds {
		svcs[key.svc] = true
	}
	p.mu.Unlock()
	for s := range svcs {
		p.ReleaseService(s)
	}
}

// RunningTasks returns the service's tasks currently marked running,
// for assertions in tests and experiments.
func (p *Provider) RunningTasks(svc string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.services[svc]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(st.running))
	for tid := range st.running {
		out = append(out, tid)
	}
	return out
}

func (p *Provider) serviceStateLocked(svc string) *serviceState {
	st, ok := p.services[svc]
	if !ok {
		st = &serviceState{
			reservations: make(map[string]reservationEntry),
			running:      make(map[string]bool),
		}
		p.services[svc] = st
	}
	return st
}
