package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/proto"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/task"
	"repro/internal/trace"
)

// MaxCommCost is the communication-cost ceiling above which a node is
// treated as effectively unreachable: proposal admission discards such
// offers, and the adaptation engine refuses to migrate tasks there, so
// negotiation and repair always agree on reachability.
const MaxCommCost = 1e17

// OrganizerConfig tunes the Negotiation Organizer.
type OrganizerConfig struct {
	// ProposalWait is how long (seconds) the organizer collects
	// proposals after broadcasting a CFP.
	ProposalWait float64
	// AckWait is how long the organizer waits for award acknowledgements
	// before treating silent awards as declined.
	AckWait float64
	// MaxRounds bounds renegotiation attempts (>=1). A round re-issues
	// the CFP for tasks that remain unassigned or were declined.
	MaxRounds int
	// Policy selects winners (the paper's three criteria).
	Policy SelectionPolicy
	// Monitor enables operation-phase heartbeat supervision.
	Monitor bool
	// HeartbeatTimeout declares a member failed when no heartbeat
	// arrives within this window (seconds).
	HeartbeatTimeout float64
	// Reconfigure re-runs negotiation for tasks orphaned by a member
	// failure (the paper's operation-phase "coalition reconfiguration
	// due to partial failures").
	Reconfigure bool
	// ImproveEps is the minimum distance improvement that justifies
	// migrating an already-served task during a TryImprove round
	// (Section 4's run-time adaptation). Zero selects 0.05.
	ImproveEps float64
	// Trace receives protocol events (nil = no tracing).
	Trace trace.Tracer
}

// DefaultOrganizerConfig is the configuration used by the experiments.
var DefaultOrganizerConfig = OrganizerConfig{
	ProposalWait:     0.25,
	AckWait:          0.25,
	MaxRounds:        6,
	Policy:           DefaultPolicy,
	Monitor:          true,
	HeartbeatTimeout: 2.0,
	Reconfigure:      true,
}

// CoalitionState is the life-cycle phase of Section 4.
type CoalitionState int

const (
	// Forming covers partner selection (negotiation in progress).
	Forming CoalitionState = iota
	// Operating covers control and monitoring of partners' execution.
	Operating
	// Dissolved is the terminated coalition.
	Dissolved
)

// String names the state.
func (s CoalitionState) String() string {
	switch s {
	case Forming:
		return "forming"
	case Operating:
		return "operating"
	default:
		return "dissolved"
	}
}

// Result reports a formation (or reformation) outcome.
type Result struct {
	ServiceID string
	// Assigned maps task IDs to their winning node and level.
	Assigned map[string]Assignment3
	// Unserved lists tasks no node could serve acceptably.
	Unserved []string
	// Rounds is the number of negotiation rounds used.
	Rounds int
	// FormationTime is the elapsed time from Start to completion.
	FormationTime float64
	// ProposalsReceived counts proposal messages across rounds.
	ProposalsReceived int
}

// Complete reports whether every task was assigned.
func (r *Result) Complete() bool { return len(r.Unserved) == 0 }

// Members returns the distinct winning nodes, ascending.
func (r *Result) Members() []radio.NodeID {
	seen := make(map[radio.NodeID]bool)
	var out []radio.NodeID
	for _, a := range r.Assigned {
		if !seen[a.Node] {
			seen[a.Node] = true
			out = append(out, a.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MeanDistance averages the evaluation value over assigned tasks.
func (r *Result) MeanDistance() float64 {
	if len(r.Assigned) == 0 {
		return 0
	}
	var t float64
	for _, a := range r.Assigned {
		t += a.Distance
	}
	return t / float64(len(r.Assigned))
}

// Organizer is the paper's Negotiation Organizer: the QoS Provider of the
// node where the user requested the service "starts and guides all the
// negotiation process" (Section 4.2).
type Organizer struct {
	tr  proto.Transport
	tm  proto.Timers
	cfg OrganizerConfig
	svc *task.Service

	mu        sync.Mutex
	state     CoalitionState
	round     int
	pending   map[string]bool // tasks needing assignment this round
	collect   bool
	cands     map[string][]Candidate
	awarded   map[string]Assignment3 // awaiting ack
	acked     map[string]bool
	assigned  map[string]Assignment3
	started   float64
	proposals int
	onFormed  func(*Result)
	lastHB    map[radio.NodeID]float64
	monitorOn bool

	improving     bool
	improveTarget map[string]Assignment3 // task -> migration candidate

	// Reconfigurations counts failure-driven renegotiations.
	Reconfigurations int
	// Failures counts member failures detected by the monitor.
	Failures int
	// Upgrades counts tasks migrated to better levels by TryImprove.
	Upgrades int
}

// NewOrganizer builds an organizer for one service. onFormed fires every
// time a (re)formation attempt finishes — once initially, and once per
// reconfiguration when monitoring is enabled.
func NewOrganizer(svc *task.Service, tr proto.Transport, tm proto.Timers, cfg OrganizerConfig, onFormed func(*Result)) (*Organizer, error) {
	if err := svc.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProposalWait <= 0 {
		cfg.ProposalWait = DefaultOrganizerConfig.ProposalWait
	}
	if cfg.AckWait <= 0 {
		cfg.AckWait = DefaultOrganizerConfig.AckWait
	}
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Nop{}
	}
	return &Organizer{
		tr: tr, tm: tm, cfg: cfg, svc: svc,
		pending:  make(map[string]bool),
		assigned: make(map[string]Assignment3),
		lastHB:   make(map[radio.NodeID]float64),
		onFormed: onFormed,
	}, nil
}

// State returns the coalition's life-cycle phase.
func (o *Organizer) State() CoalitionState {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}

// Service returns the negotiated service.
func (o *Organizer) Service() *task.Service { return o.svc }

// Start begins the formation phase: it broadcasts the service description
// and user preferences and collects proposals.
func (o *Organizer) Start() {
	o.mu.Lock()
	o.started = o.tm.Now()
	for _, t := range o.svc.Tasks {
		o.pending[t.ID] = true
	}
	o.mu.Unlock()
	o.startRound()
}

func (o *Organizer) startRound() {
	o.mu.Lock()
	if o.state == Dissolved {
		o.mu.Unlock()
		return
	}
	round := o.round
	cfp := &proto.CFP{
		ServiceID: o.svc.ID,
		Round:     round,
		SpecName:  o.svc.Spec.Name,
		Deadline:  o.tm.Now() + o.cfg.ProposalWait,
	}
	order := o.pendingOrderLocked()
	for _, tid := range order {
		t := o.svc.Task(tid)
		cfp.Tasks = append(cfp.Tasks, proto.TaskDescr{
			TaskID:    t.ID,
			Request:   t.Request,
			DemandRef: t.Ref(o.svc.ID),
			InBytes:   t.InBytes,
			OutBytes:  t.OutBytes,
		})
	}
	o.collect = true
	o.cands = make(map[string][]Candidate)
	o.awarded = make(map[string]Assignment3)
	o.acked = make(map[string]bool)
	o.mu.Unlock()

	o.emit("cfp", fmt.Sprintf("service %s round %d: %d task(s)", o.svc.ID, round, len(cfp.Tasks)))
	o.tr.Broadcast(cfp)
	o.tr.Send(o.tr.Self(), cfp) // the organizer's own node may join the coalition
	o.tm.After(o.cfg.ProposalWait, func() { o.closeRound(round) })
}

// emit publishes a trace event stamped with this organizer's clock.
func (o *Organizer) emit(kind, detail string) {
	o.cfg.Trace.Emit(trace.Event{
		T: o.tm.Now(), Node: int(o.tr.Self()), Role: "organizer", Kind: kind, Detail: detail,
	})
}

// pendingOrderLocked returns pending tasks in service declaration order.
func (o *Organizer) pendingOrderLocked() []string {
	var order []string
	for _, t := range o.svc.Tasks {
		if o.pending[t.ID] {
			order = append(order, t.ID)
		}
	}
	return order
}

// OnMsg dispatches organizer-role messages.
func (o *Organizer) OnMsg(from radio.NodeID, m proto.Msg) {
	switch msg := m.(type) {
	case *proto.Proposal:
		o.onProposal(from, msg)
	case *proto.AwardAck:
		o.onAwardAck(from, msg)
	case *proto.Heartbeat:
		o.onHeartbeat(from, msg)
	}
}

// onProposal evaluates each task proposal (step 3 of the negotiation
// algorithm): admissibility, the Section 6 distance, and communication
// cost; inadmissible or unreachable offers are discarded.
func (o *Organizer) onProposal(from radio.NodeID, m *proto.Proposal) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if m.ServiceID != o.svc.ID || m.Round != o.round || !o.collect {
		return
	}
	o.proposals++
	for _, tp := range m.Tasks {
		if !o.pending[tp.TaskID] {
			if !o.improving {
				continue
			}
			if _, served := o.assigned[tp.TaskID]; !served {
				continue
			}
		}
		t := o.svc.Task(tp.TaskID)
		if t == nil {
			continue
		}
		eval, err := qos.NewEvaluator(o.svc.Spec, &t.Request)
		if err != nil {
			continue
		}
		dist, err := eval.Distance(tp.Level)
		if err != nil {
			continue // not admissible: the paper evaluates admissible proposals only
		}
		cost := o.tr.CommCost(from, t.DataBytes())
		if cost != cost || cost > MaxCommCost { // NaN or effectively unreachable
			continue
		}
		o.cands[tp.TaskID] = append(o.cands[tp.TaskID], Candidate{
			Node: from, TaskID: tp.TaskID, Level: tp.Level,
			Reward: tp.Reward, Distance: dist, CommCost: cost,
			Copies: tp.Copies,
		})
	}
}

// closeRound selects winners and issues awards.
func (o *Organizer) closeRound(round int) {
	o.mu.Lock()
	if o.state == Dissolved || round != o.round || !o.collect {
		o.mu.Unlock()
		return
	}
	o.collect = false
	order := o.pendingOrderLocked()
	sel := SelectWinners(order, o.cands, o.cfg.Policy)
	byNode := make(map[radio.NodeID][]string)
	for _, a := range sel.Assigned {
		o.awarded[a.TaskID] = a
		byNode[a.Node] = append(byNode[a.Node], a.TaskID)
	}
	nodes := make([]radio.NodeID, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	svcID := o.svc.ID
	unserved := len(sel.Unserved)
	o.mu.Unlock()

	o.emit("select", fmt.Sprintf("service %s round %d: %d award(s) to %d node(s), %d without proposals",
		svcID, round, len(sel.Assigned), len(nodes), unserved))
	for _, n := range nodes {
		o.tr.Send(n, &proto.Award{ServiceID: svcID, Round: round, TaskIDs: byNode[n]})
	}
	o.tm.After(o.cfg.AckWait, func() { o.finishRound(round) })
}

// onAwardAck confirms accepted tasks and ships their data. During an
// improvement round the accepted award migrates the task: the previous
// member is told to release it.
func (o *Organizer) onAwardAck(from radio.NodeID, m *proto.AwardAck) {
	o.mu.Lock()
	if m.ServiceID != o.svc.ID || m.Round != o.round {
		o.mu.Unlock()
		return
	}
	var data []*proto.TaskData
	type release struct {
		node radio.NodeID
		tid  string
	}
	var releases []release
	for _, tid := range m.TaskIDs {
		a, ok := o.awarded[tid]
		if !ok || a.Node != from || o.acked[tid] {
			continue
		}
		o.acked[tid] = true
		if prev, had := o.assigned[tid]; had && prev.Node != a.Node {
			releases = append(releases, release{node: prev.Node, tid: tid})
			if o.improving {
				o.Upgrades++
			}
		}
		o.assigned[tid] = a
		delete(o.pending, tid)
		t := o.svc.Task(tid)
		data = append(data, &proto.TaskData{ServiceID: o.svc.ID, TaskID: tid, Bytes: t.InBytes})
	}
	o.lastHB[from] = o.tm.Now()
	svcID := o.svc.ID
	o.mu.Unlock()
	for _, d := range data {
		o.tr.Send(from, d)
	}
	for _, r := range releases {
		o.emit("upgrade", fmt.Sprintf("service %s: task %s migrated node %d -> %d", svcID, r.tid, r.node, from))
		o.tr.Send(r.node, &proto.TaskRelease{ServiceID: svcID, TaskID: r.tid, Reason: "migrated to a closer-to-preference proposal"})
	}
}

// TryImprove starts a quality-upgrade renegotiation for the operating
// coalition: a fresh CFP over all currently served tasks; a task
// migrates only when some node now offers a level at least ImproveEps
// closer to the user's preferences than the current one. This realizes
// the paper's Section 4 run-time adaptation ("applications ... can
// dynamically change the executing quality level"). It is a no-op
// unless the coalition is operating and idle.
func (o *Organizer) TryImprove() {
	o.mu.Lock()
	if o.state != Operating || o.improving || o.collect {
		o.mu.Unlock()
		return
	}
	o.improving = true
	o.round++
	round := o.round
	cfp := &proto.CFP{
		ServiceID: o.svc.ID,
		Round:     round,
		SpecName:  o.svc.Spec.Name,
		Deadline:  o.tm.Now() + o.cfg.ProposalWait,
	}
	for _, t := range o.svc.Tasks {
		if _, served := o.assigned[t.ID]; !served {
			continue
		}
		cfp.Tasks = append(cfp.Tasks, proto.TaskDescr{
			TaskID:    t.ID,
			Request:   t.Request,
			DemandRef: t.Ref(o.svc.ID),
			InBytes:   t.InBytes,
			OutBytes:  t.OutBytes,
		})
	}
	o.collect = true
	o.cands = make(map[string][]Candidate)
	o.awarded = make(map[string]Assignment3)
	o.acked = make(map[string]bool)
	o.mu.Unlock()
	if len(cfp.Tasks) == 0 {
		o.mu.Lock()
		o.improving = false
		o.collect = false
		o.mu.Unlock()
		return
	}
	o.emit("upgrade-cfp", fmt.Sprintf("service %s round %d: probing %d served task(s) for better levels", o.svc.ID, round, len(cfp.Tasks)))
	o.tr.Broadcast(cfp)
	o.tr.Send(o.tr.Self(), cfp)
	o.tm.After(o.cfg.ProposalWait, func() { o.closeImprove(round) })
}

// closeImprove selects migration targets: the best fresh proposal per
// served task, accepted only when it beats the current distance by
// ImproveEps, never from the node already serving the task.
func (o *Organizer) closeImprove(round int) {
	o.mu.Lock()
	if o.state == Dissolved || round != o.round || !o.collect {
		o.mu.Unlock()
		return
	}
	o.collect = false
	eps := o.cfg.ImproveEps
	if eps <= 0 {
		eps = 0.05
	}
	used := make(budget)
	byNode := make(map[radio.NodeID][]string)
	for _, t := range o.svc.Tasks {
		cur, served := o.assigned[t.ID]
		if !served {
			continue
		}
		ordered := append([]Candidate(nil), o.cands[t.ID]...)
		sort.Slice(ordered, func(i, j int) bool {
			return candidateLess(ordered[i], ordered[j], o.cfg.Policy)
		})
		for _, c := range ordered {
			if c.Node == cur.Node || c.Distance > cur.Distance-eps || !used.fits(c) {
				continue
			}
			used.take(c)
			o.awarded[t.ID] = Assignment3{
				TaskID: t.ID, Node: c.Node, Level: c.Level,
				Distance: c.Distance, CommCost: c.CommCost,
			}
			byNode[c.Node] = append(byNode[c.Node], t.ID)
			break
		}
	}
	nodes := make([]radio.NodeID, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	svcID := o.svc.ID
	o.mu.Unlock()
	for _, n := range nodes {
		o.tr.Send(n, &proto.Award{ServiceID: svcID, Round: round, TaskIDs: byNode[n]})
	}
	o.tm.After(o.cfg.AckWait, func() { o.finishImprove(round) })
}

// finishImprove closes the improvement window; tasks whose migration
// award went unacknowledged simply stay where they are.
func (o *Organizer) finishImprove(round int) {
	o.mu.Lock()
	if round == o.round {
		o.improving = false
	}
	o.mu.Unlock()
}

// finishRound decides whether to renegotiate unassigned tasks or to
// finish the formation attempt.
func (o *Organizer) finishRound(round int) {
	o.mu.Lock()
	if o.state == Dissolved || round != o.round {
		o.mu.Unlock()
		return
	}
	pendingLeft := len(o.pending)
	if pendingLeft > 0 && round+1 < o.cfg.MaxRounds {
		o.round++
		o.mu.Unlock()
		o.startRound()
		return
	}
	res := &Result{
		ServiceID:         o.svc.ID,
		Assigned:          make(map[string]Assignment3, len(o.assigned)),
		Rounds:            round + 1,
		FormationTime:     o.tm.Now() - o.started,
		ProposalsReceived: o.proposals,
	}
	for tid, a := range o.assigned {
		res.Assigned[tid] = a
	}
	for _, t := range o.svc.Tasks {
		if _, ok := o.assigned[t.ID]; !ok {
			res.Unserved = append(res.Unserved, t.ID)
		}
	}
	o.state = Operating
	startMonitor := o.cfg.Monitor && !o.monitorOn && len(res.Assigned) > 0
	if startMonitor {
		o.monitorOn = true
		now := o.tm.Now()
		for _, a := range o.assigned {
			if _, seen := o.lastHB[a.Node]; !seen {
				o.lastHB[a.Node] = now
			}
		}
	}
	cb := o.onFormed
	o.mu.Unlock()
	o.emit("formed", fmt.Sprintf("service %s: %d/%d tasks on %d member(s) after %d round(s)",
		res.ServiceID, len(res.Assigned), len(o.svc.Tasks), len(res.Members()), res.Rounds))
	if cb != nil {
		cb(res)
	}
	if startMonitor {
		o.monitorTick()
	}
}

// onHeartbeat refreshes a member's liveness timestamp.
func (o *Organizer) onHeartbeat(from radio.NodeID, m *proto.Heartbeat) {
	if m.ServiceID != o.svc.ID {
		return
	}
	o.mu.Lock()
	o.lastHB[from] = o.tm.Now()
	o.mu.Unlock()
}

// monitorTick supervises the operation phase: members whose heartbeats
// stopped are declared failed, their tasks orphaned, and — when
// Reconfigure is set — renegotiated among the remaining nodes.
func (o *Organizer) monitorTick() {
	period := o.cfg.HeartbeatTimeout / 2
	if period <= 0 {
		period = 0.5
	}
	o.tm.After(period, func() {
		o.mu.Lock()
		if o.state == Dissolved {
			o.mu.Unlock()
			return
		}
		now := o.tm.Now()
		failed := make(map[radio.NodeID]bool)
		for tid, a := range o.assigned {
			if a.Node == o.tr.Self() {
				continue // local execution needs no radio heartbeat
			}
			last, ok := o.lastHB[a.Node]
			if !ok || now-last > o.cfg.HeartbeatTimeout {
				failed[a.Node] = true
				delete(o.assigned, tid)
				o.pending[tid] = true
			}
		}
		renegotiate := false
		if len(failed) > 0 {
			o.Failures += len(failed)
			for n := range failed {
				delete(o.lastHB, n)
			}
			if o.cfg.Reconfigure {
				o.Reconfigurations++
				o.round++
				renegotiate = true
			}
		}
		o.mu.Unlock()
		if len(failed) > 0 {
			nodes := make([]radio.NodeID, 0, len(failed))
			for n := range failed {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			o.emit("failure", fmt.Sprintf("service %s: members %v silent beyond %gs", o.svc.ID, nodes, o.cfg.HeartbeatTimeout))
		}
		if renegotiate {
			o.emit("reconfigure", fmt.Sprintf("service %s: renegotiating orphaned tasks", o.svc.ID))
			o.startRound()
		}
		o.monitorTick()
	})
}

// Dissolve terminates the coalition (Section 4 "dissolution"): members
// are told to release their reservations and monitoring stops.
func (o *Organizer) Dissolve(reason string) {
	o.mu.Lock()
	if o.state == Dissolved {
		o.mu.Unlock()
		return
	}
	o.state = Dissolved
	svcID := o.svc.ID
	o.mu.Unlock()
	o.emit("dissolve", fmt.Sprintf("service %s: %s", svcID, reason))
	m := &proto.Dissolve{ServiceID: svcID, Reason: reason}
	o.tr.Broadcast(m)
	o.tr.Send(o.tr.Self(), m)
}

// ApplyAdaptation installs an externally renegotiated allocation for one
// currently assigned task: the mid-session adaptation engine
// (internal/adapt) re-runs the compiled formulation over live sessions
// and publishes the outcome here so that monitoring, sampling and
// departure statistics all see the session's *current* QoS, not its
// admission-time level. It is a no-op (returning false) unless the
// coalition is operating and the task is assigned — an adaptation racing
// a dissolve or a renegotiation round must lose.
func (o *Organizer) ApplyAdaptation(taskID string, a Assignment3) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state != Operating {
		return false
	}
	if _, ok := o.assigned[taskID]; !ok {
		return false
	}
	o.assigned[taskID] = a
	// The (possibly new) serving node is live by construction; refresh
	// its liveness stamp so an enabled monitor does not instantly declare
	// a freshly migrated member silent.
	o.lastHB[a.Node] = o.tm.Now()
	return true
}

// Assignment returns the current allocation of a task, if any.
func (o *Organizer) Assignment(taskID string) (Assignment3, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	a, ok := o.assigned[taskID]
	return a, ok
}

// Snapshot returns a copy of the current assignments.
func (o *Organizer) Snapshot() map[string]Assignment3 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]Assignment3, len(o.assigned))
	for k, v := range o.assigned {
		out[k] = v
	}
	return out
}

// describe is kept for error paths needing a service summary.
func (o *Organizer) describe() string {
	return fmt.Sprintf("service %q (%d tasks)", o.svc.ID, len(o.svc.Tasks))
}
