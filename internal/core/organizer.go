package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/proto"
	"repro/internal/qos"
	"repro/internal/radio"
	"repro/internal/task"
	"repro/internal/trace"
)

// MaxCommCost is the communication-cost ceiling above which a node is
// treated as effectively unreachable: proposal admission discards such
// offers, and the adaptation engine refuses to migrate tasks there, so
// negotiation and repair always agree on reachability.
const MaxCommCost = 1e17

// OrganizerConfig tunes the Negotiation Organizer.
type OrganizerConfig struct {
	// ProposalWait is how long (seconds) the organizer collects
	// proposals after broadcasting a CFP.
	ProposalWait float64
	// AckWait is how long the organizer waits for award acknowledgements
	// before treating silent awards as declined.
	AckWait float64
	// MaxRounds bounds renegotiation attempts (>=1). A round re-issues
	// the CFP for tasks that remain unassigned or were declined.
	MaxRounds int
	// Policy selects winners (the paper's three criteria).
	Policy SelectionPolicy
	// Monitor enables operation-phase heartbeat supervision.
	Monitor bool
	// HeartbeatTimeout declares a member failed when no heartbeat
	// arrives within this window (seconds).
	HeartbeatTimeout float64
	// Reconfigure re-runs negotiation for tasks orphaned by a member
	// failure (the paper's operation-phase "coalition reconfiguration
	// due to partial failures").
	Reconfigure bool
	// ImproveEps is the minimum distance improvement that justifies
	// migrating an already-served task during a TryImprove round
	// (Section 4's run-time adaptation). Zero selects 0.05.
	ImproveEps float64
	// Trace receives protocol events (nil = no tracing).
	Trace trace.Tracer
}

// DefaultOrganizerConfig is the configuration used by the experiments.
var DefaultOrganizerConfig = OrganizerConfig{
	ProposalWait:     0.25,
	AckWait:          0.25,
	MaxRounds:        6,
	Policy:           DefaultPolicy,
	Monitor:          true,
	HeartbeatTimeout: 2.0,
	Reconfigure:      true,
}

// CoalitionState is the life-cycle phase of Section 4.
type CoalitionState int

const (
	// Forming covers partner selection (negotiation in progress).
	Forming CoalitionState = iota
	// Operating covers control and monitoring of partners' execution.
	Operating
	// Dissolved is the terminated coalition.
	Dissolved
)

// String names the state.
func (s CoalitionState) String() string {
	switch s {
	case Forming:
		return "forming"
	case Operating:
		return "operating"
	default:
		return "dissolved"
	}
}

// Result reports a formation (or reformation) outcome.
type Result struct {
	ServiceID string
	// Assigned maps task IDs to their winning node and level.
	Assigned map[string]Assignment3
	// Unserved lists tasks no node could serve acceptably.
	Unserved []string
	// Rounds is the number of negotiation rounds used.
	Rounds int
	// FormationTime is the elapsed time from Start to completion.
	FormationTime float64
	// ProposalsReceived counts proposal messages across rounds.
	ProposalsReceived int
}

// Complete reports whether every task was assigned.
func (r *Result) Complete() bool { return len(r.Unserved) == 0 }

// Members returns the distinct winning nodes, ascending.
func (r *Result) Members() []radio.NodeID {
	seen := make(map[radio.NodeID]bool)
	var out []radio.NodeID
	for _, a := range r.Assigned {
		if !seen[a.Node] {
			seen[a.Node] = true
			out = append(out, a.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MeanDistance averages the evaluation value over assigned tasks.
func (r *Result) MeanDistance() float64 {
	if len(r.Assigned) == 0 {
		return 0
	}
	var t float64
	for _, a := range r.Assigned {
		t += a.Distance
	}
	return t / float64(len(r.Assigned))
}

// Organizer is the paper's Negotiation Organizer: the QoS Provider of the
// node where the user requested the service "starts and guides all the
// negotiation process" (Section 4.2).
type Organizer struct {
	tr  proto.Transport
	tm  proto.Timers
	cfg OrganizerConfig
	svc *task.Service

	mu    sync.Mutex
	state CoalitionState
	round int
	// tasks is the per-task negotiation state, indexed in service
	// declaration order. One slice replaces what used to be five
	// per-organizer maps (pending, assigned, awarded, acked, evals):
	// open-system runs create an organizer per arriving session, so the
	// per-organizer container count is a first-order allocation cost.
	tasks     []orgTask
	collect   bool
	cands     map[string][]Candidate
	started   float64
	proposals int
	onFormed  func(*Result)
	lastHB    map[radio.NodeID]float64
	monitorOn bool

	improving bool

	// orderBuf is the reused pending-order scratch; monitorFn the
	// persistent supervision closure rescheduled every period.
	orderBuf  []string
	monitorFn func()
	traceOn   bool

	// Reconfigurations counts failure-driven renegotiations.
	Reconfigurations int
	// Failures counts member failures detected by the monitor.
	Failures int
	// Upgrades counts tasks migrated to better levels by TryImprove.
	Upgrades int
}

// orgTask is one task's negotiation state.
type orgTask struct {
	t       *task.Task
	pending bool // needs assignment this round
	// assigned/asg is the confirmed allocation; awarded/award the award
	// awaiting acknowledgement this round; acked marks a received ack.
	assigned bool
	asg      Assignment3
	awarded  bool
	award    Assignment3
	acked    bool
	// eval caches the admission evaluator: spec and request are immutable
	// for the organizer's life, so proposal evaluation reuses the
	// compiled evaluator instead of revalidating per proposal. A task
	// whose request fails validation caches nil and keeps being skipped,
	// exactly as when it was rebuilt (and re-failed) per proposal.
	eval     *qos.Evaluator
	evalInit bool
}

// taskAt returns the state record for a task ID, or nil for IDs outside
// the service (stale or foreign protocol traffic). Services are small —
// a linear scan beats a per-organizer map.
func (o *Organizer) taskAt(tid string) *orgTask {
	for i := range o.tasks {
		if o.tasks[i].t.ID == tid {
			return &o.tasks[i]
		}
	}
	return nil
}

// NewOrganizer builds an organizer for one service. onFormed fires every
// time a (re)formation attempt finishes — once initially, and once per
// reconfiguration when monitoring is enabled.
func NewOrganizer(svc *task.Service, tr proto.Transport, tm proto.Timers, cfg OrganizerConfig, onFormed func(*Result)) (*Organizer, error) {
	if err := svc.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProposalWait <= 0 {
		cfg.ProposalWait = DefaultOrganizerConfig.ProposalWait
	}
	if cfg.AckWait <= 0 {
		cfg.AckWait = DefaultOrganizerConfig.AckWait
	}
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.Nop{}
	}
	_, nop := cfg.Trace.(trace.Nop)
	o := &Organizer{
		tr: tr, tm: tm, cfg: cfg, svc: svc, traceOn: !nop,
		tasks:    make([]orgTask, len(svc.Tasks)),
		lastHB:   make(map[radio.NodeID]float64),
		onFormed: onFormed,
	}
	for i, t := range svc.Tasks {
		o.tasks[i].t = t
	}
	return o, nil
}

// State returns the coalition's life-cycle phase.
func (o *Organizer) State() CoalitionState {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}

// Quiescent reports whether the coalition is operating with no
// negotiation round in flight: no proposal collection and no
// improvement renegotiation. The reservation-reconciliation sweep only
// reads a live session's assignments in this state — mid-round, a
// provider may legitimately hold a reservation the organizer has not
// published yet (award sent, ack pending), which a sweep must not
// mistake for an orphan.
func (o *Organizer) Quiescent() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state == Operating && !o.collect && !o.improving
}

// Service returns the negotiated service.
func (o *Organizer) Service() *task.Service { return o.svc }

// Start begins the formation phase: it broadcasts the service description
// and user preferences and collects proposals.
func (o *Organizer) Start() {
	o.mu.Lock()
	o.started = o.tm.Now()
	for i := range o.tasks {
		o.tasks[i].pending = true
	}
	o.mu.Unlock()
	o.startRound()
}

func (o *Organizer) startRound() {
	o.mu.Lock()
	if o.state == Dissolved {
		o.mu.Unlock()
		return
	}
	round := o.round
	cfp := &proto.CFP{
		ServiceID: o.svc.ID,
		Round:     round,
		SpecName:  o.svc.Spec.Name,
		Deadline:  o.tm.Now() + o.cfg.ProposalWait,
	}
	order := o.pendingOrderLocked()
	for _, tid := range order {
		t := o.svc.Task(tid)
		cfp.Tasks = append(cfp.Tasks, proto.TaskDescr{
			TaskID:    t.ID,
			Request:   t.Request,
			DemandRef: t.Ref(o.svc.ID),
			InBytes:   t.InBytes,
			OutBytes:  t.OutBytes,
		})
	}
	o.collect = true
	o.resetRoundLocked()
	o.mu.Unlock()

	if o.traceOn {
		o.emit("cfp", fmt.Sprintf("service %s round %d: %d task(s)", o.svc.ID, round, len(cfp.Tasks)))
	}
	o.tr.Broadcast(cfp)
	o.tr.Send(o.tr.Self(), cfp) // the organizer's own node may join the coalition
	o.tm.After(o.cfg.ProposalWait, func() { o.closeRound(round) })
}

// emit publishes a trace event stamped with this organizer's clock.
func (o *Organizer) emit(kind, detail string) {
	o.cfg.Trace.Emit(trace.Event{
		T: o.tm.Now(), Node: int(o.tr.Self()), Role: "organizer", Kind: kind, Detail: detail,
	})
}

// pendingOrderLocked returns pending tasks in service declaration order.
// The returned slice aliases a reused scratch buffer valid until the next
// call; callers consume it before releasing o.mu-protected round state.
func (o *Organizer) pendingOrderLocked() []string {
	o.orderBuf = o.orderBuf[:0]
	for i := range o.tasks {
		if o.tasks[i].pending {
			o.orderBuf = append(o.orderBuf, o.tasks[i].t.ID)
		}
	}
	return o.orderBuf
}

// pendingCountLocked counts tasks still needing assignment.
func (o *Organizer) pendingCountLocked() int {
	n := 0
	for i := range o.tasks {
		if o.tasks[i].pending {
			n++
		}
	}
	return n
}

// resetRoundLocked clears the per-round negotiation state, reusing the
// candidate map storage (and the per-task candidate slices' backing
// arrays) across rounds instead of reallocating them.
func (o *Organizer) resetRoundLocked() {
	if o.cands == nil {
		o.cands = make(map[string][]Candidate)
	} else {
		for k, v := range o.cands {
			o.cands[k] = v[:0]
		}
	}
	for i := range o.tasks {
		o.tasks[i].awarded = false
		o.tasks[i].acked = false
	}
}

// evaluatorFor returns the cached admission evaluator for a task,
// building it on first use. Returns nil when the task's request does not
// validate against the spec (such proposals are discarded, as before).
func (o *Organizer) evaluatorFor(ot *orgTask) *qos.Evaluator {
	if !ot.evalInit {
		ot.eval, _ = qos.NewEvaluator(o.svc.Spec, &ot.t.Request)
		ot.evalInit = true
	}
	return ot.eval
}

// OnMsg dispatches organizer-role messages.
func (o *Organizer) OnMsg(from radio.NodeID, m proto.Msg) {
	switch msg := m.(type) {
	case *proto.Proposal:
		o.onProposal(from, msg)
	case *proto.AwardAck:
		o.onAwardAck(from, msg)
	case *proto.Heartbeat:
		o.onHeartbeat(from, msg)
	}
}

// onProposal evaluates each task proposal (step 3 of the negotiation
// algorithm): admissibility, the Section 6 distance, and communication
// cost; inadmissible or unreachable offers are discarded.
func (o *Organizer) onProposal(from radio.NodeID, m *proto.Proposal) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if m.ServiceID != o.svc.ID || m.Round != o.round || !o.collect {
		return
	}
	o.proposals++
	for _, tp := range m.Tasks {
		ot := o.taskAt(tp.TaskID)
		if ot == nil {
			continue
		}
		if !ot.pending {
			if !o.improving || !ot.assigned {
				continue
			}
		}
		eval := o.evaluatorFor(ot)
		if eval == nil {
			continue
		}
		dist, err := eval.Distance(tp.Level)
		if err != nil {
			continue // not admissible: the paper evaluates admissible proposals only
		}
		cost := o.tr.CommCost(from, ot.t.DataBytes())
		if cost != cost || cost > MaxCommCost { // NaN or effectively unreachable
			continue
		}
		o.cands[tp.TaskID] = append(o.cands[tp.TaskID], Candidate{
			Node: from, TaskID: tp.TaskID, Level: tp.Level,
			Reward: tp.Reward, Distance: dist, CommCost: cost,
			Copies: tp.Copies,
		})
	}
}

// closeRound selects winners and issues awards.
func (o *Organizer) closeRound(round int) {
	o.mu.Lock()
	if o.state == Dissolved || round != o.round || !o.collect {
		o.mu.Unlock()
		return
	}
	o.collect = false
	order := o.pendingOrderLocked()
	sel := SelectWinners(order, o.cands, o.cfg.Policy)
	byNode := make(map[radio.NodeID][]string)
	for _, a := range sel.Assigned {
		if ot := o.taskAt(a.TaskID); ot != nil {
			ot.awarded, ot.award = true, a
		}
		byNode[a.Node] = append(byNode[a.Node], a.TaskID)
	}
	nodes := make([]radio.NodeID, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	svcID := o.svc.ID
	unserved := len(sel.Unserved)
	o.mu.Unlock()

	if o.traceOn {
		o.emit("select", fmt.Sprintf("service %s round %d: %d award(s) to %d node(s), %d without proposals",
			svcID, round, len(sel.Assigned), len(nodes), unserved))
	}
	for _, n := range nodes {
		o.tr.Send(n, &proto.Award{ServiceID: svcID, Round: round, TaskIDs: byNode[n]})
	}
	o.tm.After(o.cfg.AckWait, func() { o.finishRound(round) })
}

// onAwardAck confirms accepted tasks and ships their data. During an
// improvement round the accepted award migrates the task: the previous
// member is told to release it.
func (o *Organizer) onAwardAck(from radio.NodeID, m *proto.AwardAck) {
	o.mu.Lock()
	if m.ServiceID != o.svc.ID || m.Round != o.round {
		o.mu.Unlock()
		return
	}
	var data []*proto.TaskData
	type release struct {
		node radio.NodeID
		tid  string
	}
	var releases []release
	for _, tid := range m.TaskIDs {
		ot := o.taskAt(tid)
		if ot == nil || !ot.awarded || ot.award.Node != from || ot.acked {
			continue
		}
		ot.acked = true
		if ot.assigned && ot.asg.Node != ot.award.Node {
			releases = append(releases, release{node: ot.asg.Node, tid: tid})
			if o.improving {
				o.Upgrades++
			}
		}
		ot.assigned, ot.asg = true, ot.award
		ot.pending = false
		data = append(data, &proto.TaskData{ServiceID: o.svc.ID, TaskID: tid, Bytes: ot.t.InBytes})
	}
	o.lastHB[from] = o.tm.Now()
	svcID := o.svc.ID
	o.mu.Unlock()
	for _, d := range data {
		o.tr.Send(from, d)
	}
	for _, r := range releases {
		if o.traceOn {
			o.emit("upgrade", fmt.Sprintf("service %s: task %s migrated node %d -> %d", svcID, r.tid, r.node, from))
		}
		o.tr.Send(r.node, &proto.TaskRelease{ServiceID: svcID, TaskID: r.tid, Round: m.Round, Reason: "migrated to a closer-to-preference proposal"})
	}
}

// TryImprove starts a quality-upgrade renegotiation for the operating
// coalition: a fresh CFP over all currently served tasks; a task
// migrates only when some node now offers a level at least ImproveEps
// closer to the user's preferences than the current one. This realizes
// the paper's Section 4 run-time adaptation ("applications ... can
// dynamically change the executing quality level"). It is a no-op
// unless the coalition is operating and idle.
func (o *Organizer) TryImprove() {
	o.mu.Lock()
	if o.state != Operating || o.improving || o.collect {
		o.mu.Unlock()
		return
	}
	o.improving = true
	o.round++
	round := o.round
	cfp := &proto.CFP{
		ServiceID: o.svc.ID,
		Round:     round,
		SpecName:  o.svc.Spec.Name,
		Deadline:  o.tm.Now() + o.cfg.ProposalWait,
	}
	for i := range o.tasks {
		if !o.tasks[i].assigned {
			continue
		}
		t := o.tasks[i].t
		cfp.Tasks = append(cfp.Tasks, proto.TaskDescr{
			TaskID:    t.ID,
			Request:   t.Request,
			DemandRef: t.Ref(o.svc.ID),
			InBytes:   t.InBytes,
			OutBytes:  t.OutBytes,
		})
	}
	o.collect = true
	o.resetRoundLocked()
	o.mu.Unlock()
	if len(cfp.Tasks) == 0 {
		o.mu.Lock()
		o.improving = false
		o.collect = false
		o.mu.Unlock()
		return
	}
	if o.traceOn {
		o.emit("upgrade-cfp", fmt.Sprintf("service %s round %d: probing %d served task(s) for better levels", o.svc.ID, round, len(cfp.Tasks)))
	}
	o.tr.Broadcast(cfp)
	o.tr.Send(o.tr.Self(), cfp)
	o.tm.After(o.cfg.ProposalWait, func() { o.closeImprove(round) })
}

// closeImprove selects migration targets: the best fresh proposal per
// served task, accepted only when it beats the current distance by
// ImproveEps, never from the node already serving the task.
func (o *Organizer) closeImprove(round int) {
	o.mu.Lock()
	if o.state == Dissolved || round != o.round || !o.collect {
		o.mu.Unlock()
		return
	}
	o.collect = false
	eps := o.cfg.ImproveEps
	if eps <= 0 {
		eps = 0.05
	}
	used := make(budget)
	byNode := make(map[radio.NodeID][]string)
	for i := range o.tasks {
		ot := &o.tasks[i]
		if !ot.assigned {
			continue
		}
		cur := ot.asg
		tid := ot.t.ID
		ordered := append([]Candidate(nil), o.cands[tid]...)
		sort.Slice(ordered, func(i, j int) bool {
			return candidateLess(ordered[i], ordered[j], o.cfg.Policy)
		})
		for _, c := range ordered {
			if c.Node == cur.Node || c.Distance > cur.Distance-eps || !used.fits(c) {
				continue
			}
			used.take(c)
			ot.awarded = true
			ot.award = Assignment3{
				TaskID: tid, Node: c.Node, Level: c.Level,
				Distance: c.Distance, CommCost: c.CommCost,
			}
			byNode[c.Node] = append(byNode[c.Node], tid)
			break
		}
	}
	nodes := make([]radio.NodeID, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	svcID := o.svc.ID
	o.mu.Unlock()
	for _, n := range nodes {
		o.tr.Send(n, &proto.Award{ServiceID: svcID, Round: round, TaskIDs: byNode[n]})
	}
	o.tm.After(o.cfg.AckWait, func() { o.finishImprove(round) })
}

// finishImprove closes the improvement window; tasks whose migration
// award went unacknowledged simply stay where they are.
func (o *Organizer) finishImprove(round int) {
	o.mu.Lock()
	if round == o.round {
		o.improving = false
	}
	o.mu.Unlock()
}

// finishRound decides whether to renegotiate unassigned tasks or to
// finish the formation attempt.
func (o *Organizer) finishRound(round int) {
	o.mu.Lock()
	if o.state == Dissolved || round != o.round {
		o.mu.Unlock()
		return
	}
	pendingLeft := o.pendingCountLocked()
	if pendingLeft > 0 && round+1 < o.cfg.MaxRounds {
		o.round++
		o.mu.Unlock()
		o.startRound()
		return
	}
	res := &Result{
		ServiceID:         o.svc.ID,
		Assigned:          make(map[string]Assignment3, len(o.tasks)),
		Rounds:            round + 1,
		FormationTime:     o.tm.Now() - o.started,
		ProposalsReceived: o.proposals,
	}
	for i := range o.tasks {
		if o.tasks[i].assigned {
			res.Assigned[o.tasks[i].t.ID] = o.tasks[i].asg
		} else {
			res.Unserved = append(res.Unserved, o.tasks[i].t.ID)
		}
	}
	o.state = Operating
	startMonitor := o.cfg.Monitor && !o.monitorOn && len(res.Assigned) > 0
	if startMonitor {
		o.monitorOn = true
		now := o.tm.Now()
		for i := range o.tasks {
			if !o.tasks[i].assigned {
				continue
			}
			if _, seen := o.lastHB[o.tasks[i].asg.Node]; !seen {
				o.lastHB[o.tasks[i].asg.Node] = now
			}
		}
	}
	cb := o.onFormed
	o.mu.Unlock()
	if o.traceOn {
		o.emit("formed", fmt.Sprintf("service %s: %d/%d tasks on %d member(s) after %d round(s)",
			res.ServiceID, len(res.Assigned), len(o.svc.Tasks), len(res.Members()), res.Rounds))
	}
	if cb != nil {
		cb(res)
	}
	if startMonitor {
		o.monitorTick()
	}
}

// onHeartbeat refreshes a member's liveness timestamp.
func (o *Organizer) onHeartbeat(from radio.NodeID, m *proto.Heartbeat) {
	if m.ServiceID != o.svc.ID {
		return
	}
	o.mu.Lock()
	o.lastHB[from] = o.tm.Now()
	o.mu.Unlock()
}

// monitorTick supervises the operation phase: members whose heartbeats
// stopped are declared failed, their tasks orphaned, and — when
// Reconfigure is set — renegotiated among the remaining nodes.
func (o *Organizer) monitorTick() {
	period := o.cfg.HeartbeatTimeout / 2
	if period <= 0 {
		period = 0.5
	}
	o.mu.Lock()
	if o.monitorFn == nil {
		// One closure per organizer for its whole life, not one per tick.
		o.monitorFn = o.monitorBody
	}
	fn := o.monitorFn
	o.mu.Unlock()
	o.tm.After(period, fn)
}

func (o *Organizer) monitorBody() {
	o.mu.Lock()
	if o.state == Dissolved {
		o.mu.Unlock()
		return
	}
	now := o.tm.Now()
	var failed map[radio.NodeID]bool // allocated only when a member fails
	for i := range o.tasks {
		ot := &o.tasks[i]
		if !ot.assigned {
			continue
		}
		if ot.asg.Node == o.tr.Self() {
			continue // local execution needs no radio heartbeat
		}
		last, ok := o.lastHB[ot.asg.Node]
		if !ok || now-last > o.cfg.HeartbeatTimeout {
			if failed == nil {
				failed = make(map[radio.NodeID]bool)
			}
			failed[ot.asg.Node] = true
			ot.assigned = false
			ot.pending = true
		}
	}
	renegotiate := false
	if len(failed) > 0 {
		o.Failures += len(failed)
		for n := range failed {
			delete(o.lastHB, n)
		}
		if o.cfg.Reconfigure {
			o.Reconfigurations++
			o.round++
			renegotiate = true
		}
	}
	o.mu.Unlock()
	if len(failed) > 0 {
		nodes := make([]radio.NodeID, 0, len(failed))
		for n := range failed {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		if o.traceOn {
			o.emit("failure", fmt.Sprintf("service %s: members %v silent beyond %gs", o.svc.ID, nodes, o.cfg.HeartbeatTimeout))
		}
	}
	if renegotiate {
		if o.traceOn {
			o.emit("reconfigure", fmt.Sprintf("service %s: renegotiating orphaned tasks", o.svc.ID))
		}
		o.startRound()
	}
	o.monitorTick()
}

// Dissolve terminates the coalition (Section 4 "dissolution"): members
// are told to release their reservations and monitoring stops.
func (o *Organizer) Dissolve(reason string) {
	o.mu.Lock()
	if o.state == Dissolved {
		o.mu.Unlock()
		return
	}
	o.state = Dissolved
	svcID := o.svc.ID
	o.mu.Unlock()
	if o.traceOn {
		o.emit("dissolve", fmt.Sprintf("service %s: %s", svcID, reason))
	}
	m := &proto.Dissolve{ServiceID: svcID, Reason: reason}
	o.tr.Broadcast(m)
	o.tr.Send(o.tr.Self(), m)
}

// ApplyAdaptation installs an externally renegotiated allocation for one
// currently assigned task: the mid-session adaptation engine
// (internal/adapt) re-runs the compiled formulation over live sessions
// and publishes the outcome here so that monitoring, sampling and
// departure statistics all see the session's *current* QoS, not its
// admission-time level. It is a no-op (returning false) unless the
// coalition is operating and the task is assigned — an adaptation racing
// a dissolve or a renegotiation round must lose.
func (o *Organizer) ApplyAdaptation(taskID string, a Assignment3) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.state != Operating {
		return false
	}
	ot := o.taskAt(taskID)
	if ot == nil || !ot.assigned {
		return false
	}
	ot.asg = a
	// The (possibly new) serving node is live by construction; refresh
	// its liveness stamp so an enabled monitor does not instantly declare
	// a freshly migrated member silent.
	o.lastHB[a.Node] = o.tm.Now()
	return true
}

// Assignment returns the current allocation of a task, if any.
func (o *Organizer) Assignment(taskID string) (Assignment3, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ot := o.taskAt(taskID)
	if ot == nil || !ot.assigned {
		return Assignment3{}, false
	}
	return ot.asg, true
}

// AssignedDistanceSum returns the number of currently assigned tasks and
// the sum of their distances, accumulated in task declaration order so
// the floating-point result is deterministic. It is the allocation-free
// accessor behind per-tick utilization sampling; Snapshot stays for
// callers that need the full allocation.
func (o *Organizer) AssignedDistanceSum() (int, float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	var sum float64
	for i := range o.tasks {
		if o.tasks[i].assigned {
			n++
			sum += o.tasks[i].asg.Distance
		}
	}
	return n, sum
}

// Snapshot returns a copy of the current assignments.
func (o *Organizer) Snapshot() map[string]Assignment3 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]Assignment3, len(o.tasks))
	for i := range o.tasks {
		if o.tasks[i].assigned {
			out[o.tasks[i].t.ID] = o.tasks[i].asg
		}
	}
	return out
}

// describe is kept for error paths needing a service summary.
func (o *Organizer) describe() string {
	return fmt.Sprintf("service %q (%d tasks)", o.svc.ID, len(o.svc.Tasks))
}
